"""Metamorphic properties: how the closed family responds to
controlled transformations of the database.

These tests derive expected outputs from *other* runs of the miners
rather than from an oracle, so they stay cheap on larger inputs and
catch relational bugs (order dependence, duplicate handling, item-base
sensitivity) that pointwise oracle tests can miss.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import itemset
from repro.data.database import TransactionDatabase
from repro.mining import mine

databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 8) - 1), min_size=1, max_size=12
).map(lambda masks: TransactionDatabase(masks, 8))

ALGORITHMS = ("ista", "carpenter-table", "lcm", "sam")


class TestTransactionTransforms:
    @settings(deadline=None, max_examples=25)
    @given(databases, st.integers(min_value=1, max_value=4), st.randoms())
    def test_permuting_transactions_changes_nothing(self, db, smin, rng):
        masks = list(db.transactions)
        rng.shuffle(masks)
        shuffled = TransactionDatabase(masks, db.n_items)
        for algorithm in ALGORITHMS:
            assert mine(db, smin, algorithm=algorithm) == mine(
                shuffled, smin, algorithm=algorithm
            ), algorithm

    @settings(deadline=None, max_examples=25)
    @given(databases, st.integers(min_value=1, max_value=4))
    def test_adding_empty_transactions_changes_nothing(self, db, smin):
        padded = TransactionDatabase(
            list(db.transactions) + [0, 0], db.n_items
        )
        for algorithm in ALGORITHMS:
            assert mine(db, smin, algorithm=algorithm) == mine(
                padded, smin, algorithm=algorithm
            ), algorithm

    @settings(deadline=None, max_examples=25)
    @given(databases, st.integers(min_value=1, max_value=4))
    def test_duplicating_the_database_doubles_supports(self, db, smin):
        doubled = TransactionDatabase(db.transactions * 2, db.n_items)
        base = mine(db, smin, algorithm="ista")
        grown = mine(doubled, 2 * smin, algorithm="ista")
        # Every closed set of the doubled database at twice the support
        # is a closed set of the original at the original support, with
        # exactly twice the support.
        assert set(grown) == set(base)
        for mask, support in grown.items():
            assert support == 2 * base[mask]

    @settings(deadline=None, max_examples=20)
    @given(databases)
    def test_appending_a_known_transaction_updates_one_support(self, db):
        """Appending a copy of an existing transaction raises by exactly
        one the supports of precisely the sets it contains."""
        target = db.transactions[0]
        extended = TransactionDatabase(
            list(db.transactions) + [target], db.n_items
        )
        before = mine(db, 1, algorithm="ista")
        after = mine(extended, 1, algorithm="ista")
        for mask, support in after.items():
            expected = before.support_of(mask)
            if itemset.is_subset(mask, target):
                if expected is not None:
                    assert support == expected + 1
            else:
                assert support == expected


class TestItemTransforms:
    @settings(deadline=None, max_examples=25)
    @given(databases, st.integers(min_value=1, max_value=4))
    def test_widening_the_item_base_changes_nothing(self, db, smin):
        widened = TransactionDatabase(db.transactions, db.n_items + 5)
        for algorithm in ALGORITHMS:
            assert mine(db, smin, algorithm=algorithm) == mine(
                widened, smin, algorithm=algorithm
            ), algorithm

    @settings(deadline=None, max_examples=25)
    @given(databases, st.integers(min_value=2, max_value=4))
    def test_removing_infrequent_items_changes_nothing(self, db, smin):
        filtered = db.filter_infrequent(smin)
        base = {
            frozenset(db.decode(mask)): support
            for mask, support in mine(db, smin, algorithm="lcm").items()
        }
        reduced = {
            frozenset(filtered.decode(mask)): support
            for mask, support in mine(filtered, smin, algorithm="lcm").items()
        }
        assert base == reduced

    @settings(deadline=None, max_examples=20)
    @given(databases, st.integers(min_value=1, max_value=4))
    def test_adding_a_ubiquitous_item_extends_every_closed_set(self, db, smin):
        """A new item present in every transaction joins the closure of
        every closed set (and adds the singleton family top)."""
        new_item = db.n_items
        extended = TransactionDatabase(
            [mask | (1 << new_item) for mask in db.transactions], db.n_items + 1
        )
        base = mine(db, smin, algorithm="ista")
        grown = mine(extended, smin, algorithm="ista")
        expected = {mask | (1 << new_item): supp for mask, supp in base.items()}
        if db.n_transactions >= smin:
            expected[1 << new_item] = db.n_transactions
            # the closure of the new item alone is it plus the
            # intersection of all transactions
            full_intersection = db.transactions[0]
            for mask in db.transactions[1:]:
                full_intersection &= mask
            expected.pop(1 << new_item)
            expected[(1 << new_item) | full_intersection] = db.n_transactions
        assert dict(grown) == expected

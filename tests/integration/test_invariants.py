"""Cross-cutting invariants of the closed frequent family (Section 2.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure import galois
from repro.closure.verify import all_frequent_bruteforce, reconstruct_support
from repro.data import itemset
from repro.data.database import TransactionDatabase
from repro.mining import mine
from repro.rules import support_of

databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestClosedFamilyInvariants:
    @settings(deadline=None, max_examples=30)
    @given(databases, st.integers(min_value=1, max_value=5))
    def test_closed_family_determines_all_supports(self, db, smin):
        """Section 2.3: supports of all frequent sets are reconstructible."""
        closed = mine(db, smin, algorithm="ista")
        frequent = all_frequent_bruteforce(db, smin)
        for mask, support in frequent.items():
            assert reconstruct_support(closed, mask) == support
            assert support_of(closed, mask) == support

    @settings(deadline=None, max_examples=30)
    @given(databases, st.integers(min_value=1, max_value=5))
    def test_every_closed_set_is_an_intersection_of_transactions(self, db, smin):
        """Section 2.4: each closed set equals the intersection of its cover."""
        closed = mine(db, smin, algorithm="lcm")
        for mask in closed:
            cover = galois.cover(db, mask)
            assert galois.intersection_of(db, cover) == mask

    @settings(deadline=None, max_examples=30)
    @given(databases, st.integers(min_value=1, max_value=5))
    def test_maximal_sets_are_closed_and_unextendable(self, db, smin):
        closed = mine(db, smin, algorithm="carpenter-table")
        maximal = mine(db, smin, algorithm="carpenter-table", target="maximal")
        for mask in maximal:
            assert mask in closed
            for item in range(db.n_items):
                if not itemset.contains(mask, item):
                    # Any one-item extension of a maximal set is infrequent.
                    assert db.support(mask | (1 << item)) < smin

    @settings(deadline=None, max_examples=30)
    @given(databases, st.integers(min_value=2, max_value=5))
    def test_monotone_in_smin(self, db, smin):
        """Raising the threshold can only shrink the family."""
        low = mine(db, smin - 1, algorithm="ista")
        high = mine(db, smin, algorithm="ista")
        for mask, support in high.items():
            assert low.support_of(mask) == support

    @settings(deadline=None, max_examples=30)
    @given(databases)
    def test_union_of_maximal_subsets_covers_frequent_sets(self, db):
        """Section 2.3: every frequent set has a maximal frequent superset."""
        smin = 2
        frequent = all_frequent_bruteforce(db, smin)
        maximal = mine(db, smin, algorithm="eclat", target="maximal")
        for mask in frequent:
            assert any(itemset.is_subset(mask, m) for m in maximal)


class TestOutputCompression:
    @settings(deadline=None, max_examples=25)
    @given(databases, st.integers(min_value=1, max_value=4))
    def test_closed_never_larger_than_all(self, db, smin):
        closed = mine(db, smin, algorithm="fpgrowth", target="closed")
        frequent = mine(db, smin, algorithm="fpgrowth", target="all")
        maximal = mine(db, smin, algorithm="fpgrowth", target="maximal")
        assert len(maximal) <= len(closed) <= len(frequent)

"""End-to-end checks of the paper's own worked examples."""

import pytest

from repro.closure.verify import check_closed_family
from repro.data.matrix import build_matrix, example_database
from repro.mining import mine

from ..conftest import CLOSED_ALGORITHMS, db_from_strings


class TestTable1EndToEnd:
    """The Table 1 database, mined by every algorithm at every support."""

    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    @pytest.mark.parametrize("smin", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_all_algorithms_all_supports(self, algorithm, smin):
        db = example_database()
        result = mine(db, smin, algorithm=algorithm)
        check_closed_family(db, result, smin)

    def test_matrix_drives_table_carpenter_to_same_answer(self):
        """The Table 1 matrix is what the table-based variant consumes;
        the example ties the published matrix to mining output."""
        db = example_database()
        matrix = build_matrix(db)
        assert matrix[0].tolist() == [4, 5, 5, 0, 0]
        result = mine(db, 3, algorithm="carpenter-table")
        assert mine(db, 3, algorithm="carpenter-lists") == result


class TestFigure3EndToEnd:
    """The Figure 3 example database through the public API."""

    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_closed_sets_with_support_two(self, algorithm):
        db = db_from_strings(["eca", "edb", "dcba"])
        result = mine(db, 2, algorithm=algorithm).as_frozensets()
        assert result == {
            frozenset("e"): 2,
            frozenset("db"): 2,
            frozenset("ca"): 2,
        }

    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_closed_sets_with_support_one(self, algorithm):
        db = db_from_strings(["eca", "edb", "dcba"])
        result = mine(db, 1, algorithm=algorithm).as_frozensets()
        assert len(result) == 6
        assert result[frozenset("dcba")] == 1

"""End-to-end pipelines across the package's layers."""

import pytest

from repro import (
    ConceptLattice,
    IncrementalMiner,
    TransactionDatabase,
    generate_rules,
    mine,
    profile_database,
    profile_family,
)
from repro.closure.generators import all_minimal_generators
from repro.data.arff import format_arff, parse_arff
from repro.data.io import format_fimi, parse_fimi
from repro.data.transforms import expression_to_database, transpose
from repro.datasets import (
    ncbi60_like,
    quest_baskets,
    synthetic_expression_matrix,
    thrombin_like,
    webview_transposed,
    yeast_compendium,
)
from repro.rules import generate_nonredundant_rules


class TestFigureWorkloadsEndToEnd:
    """Miniature versions of every figure workload, mined and
    cross-checked across algorithm families."""

    def test_fig5_yeast_tiny(self):
        db = yeast_compendium(n_genes=120, n_conditions=30)
        smin = 4
        reference = mine(db, smin, algorithm="lcm")
        for algorithm in ("ista", "carpenter-table", "fpgrowth", "sam"):
            assert mine(db, smin, algorithm=algorithm) == reference, algorithm

    def test_fig6_ncbi60_tiny(self):
        db = ncbi60_like(n_genes=80, n_cell_lines=16, n_tissues=4)
        smin = 10
        reference = mine(db, smin, algorithm="lcm")
        for algorithm in ("ista", "carpenter-lists", "cobbler"):
            assert mine(db, smin, algorithm=algorithm) == reference, algorithm

    def test_fig7_thrombin_tiny(self):
        db = thrombin_like(
            n_records=16, n_features=700, n_popular_groups=4,
            n_rare_groups=4, group_size=12,
        )
        smin = 10
        reference = mine(db, smin, algorithm="lcm")
        for algorithm in ("ista", "carpenter-table", "eclat"):
            assert mine(db, smin, algorithm=algorithm) == reference, algorithm

    def test_fig8_webview_tiny(self):
        db = webview_transposed(n_sessions=150, n_pages=30)
        smin = 3
        reference = mine(db, smin, algorithm="lcm")
        for algorithm in ("ista", "carpenter-table", "fpgrowth"):
            assert mine(db, smin, algorithm=algorithm) == reference, algorithm

    def test_regime_baskets_tiny(self):
        db = quest_baskets(n_transactions=120, n_items=25)
        smin = 12
        reference = mine(db, smin, algorithm="fpgrowth")
        for algorithm in ("ista", "sam", "eclat"):
            assert mine(db, smin, algorithm=algorithm) == reference, algorithm


class TestExpressionPipeline:
    """Matrix -> discretisation -> mining -> lattice -> rules."""

    @pytest.fixture
    def db(self):
        values = synthetic_expression_matrix(
            n_genes=60, n_conditions=24, n_modules=4,
            module_gene_frac=0.15, module_condition_frac=0.3, seed=9,
        )
        return expression_to_database(values, orientation="conditions-as-transactions")

    def test_profile_identifies_regime(self, db):
        assert profile_database(db).favours_intersection

    def test_mine_and_build_lattice(self, db):
        closed = mine(db, 4, algorithm="auto")
        lattice = ConceptLattice(db, closed)
        assert len(lattice) == len(closed)
        assert lattice.to_dot().startswith("digraph")

    def test_rules_and_generators(self, db):
        closed = mine(db, 5)
        family = profile_family(closed)
        assert family.n_sets == len(closed)
        generators = all_minimal_generators(db, closed, max_generator_size=3)
        assert set(generators) == set(closed)
        redundant = list(generate_rules(closed, db.n_transactions, 0.9))
        basis = list(generate_nonredundant_rules(db, closed, 0.9))
        # the basis is never larger than the full rule set restricted
        # to the same confidence (it may use antecedents outside it)
        assert len(basis) <= max(len(redundant), len(basis))


class TestFormatsPipeline:
    def test_fimi_arff_mining_agreement(self):
        db = quest_baskets(n_transactions=40, n_items=15)
        via_fimi = parse_fimi(format_fimi(db))
        via_arff = parse_arff(format_arff(db))
        assert mine(via_fimi, 4) == mine(via_arff, 4)

    def test_transpose_duality_of_results(self):
        """A closed set of the transposed database is a closed tid set
        of the original — the Section 2.5 bijection, end to end."""
        db = quest_baskets(n_transactions=12, n_items=10, seed=8)
        transposed = transpose(db)
        from repro.closure import galois
        from repro.data import itemset

        for mask, support in mine(transposed, 2).items():
            # mask = set of original transaction indices; its support in
            # the transposed view is the size of the shared item set.
            assert galois.is_tid_closed(db, mask)
            assert support == itemset.size(galois.intersection_of(db, mask))


class TestIncrementalAgainstBatch:
    def test_streaming_equals_batch_on_workload(self):
        db = quest_baskets(n_transactions=60, n_items=15, seed=5)
        miner = IncrementalMiner()
        for transaction in db.as_sets():
            miner.add(transaction)
        batch = mine(db, 5).as_frozensets()
        streamed = {
            frozenset(items): support
            for items, support in miner.closed_sets(5).items()
        }
        assert streamed == batch

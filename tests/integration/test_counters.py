"""Sanity of the operation counters across all miners.

The counters are the reproduction's language-independent evidence, so
they must be populated consistently: every miner reports its
characteristic work measure, and the counts scale with the work
actually done.
"""

import pytest

from repro.mining import mine
from repro.stats import OperationCounters

from ..conftest import CLOSED_ALGORITHMS, make_random_db


def counted(db, smin, algorithm, **options):
    counters = OperationCounters()
    result = mine(db, smin, algorithm=algorithm, counters=counters, **options)
    return result, counters


class TestPopulation:
    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_some_work_is_counted(self, algorithm):
        db = make_random_db(11, max_transactions=14, max_items=9)
        result, counters = counted(db, 2, algorithm)
        assert len(result) > 0
        total = sum(
            value for key, value in counters.as_dict().items()
            if key != "repository_peak"
        )
        assert total > 0, counters.as_dict()

    def test_intersection_miners_count_intersections(self):
        db = make_random_db(12, max_transactions=14, max_items=9)
        for algorithm in ("ista", "cumulative-flat", "carpenter-lists", "lcm"):
            _, counters = counted(db, 2, algorithm)
            assert counters.intersections > 0, algorithm

    def test_repository_peak_bounded_by_created(self):
        db = make_random_db(13, max_transactions=14, max_items=9)
        _, counters = counted(db, 2, "ista")
        assert 0 < counters.repository_peak <= counters.nodes_created

    def test_lcm_reports_equal_result_size(self):
        db = make_random_db(14, max_transactions=14, max_items=9)
        result, counters = counted(db, 2, "lcm")
        assert counters.reports == len(result)


class TestScaling:
    def test_lower_support_means_more_work(self):
        db = make_random_db(15, max_transactions=16, max_items=10)
        _, high = counted(db, 6, "ista")
        _, low = counted(db, 1, "ista")
        assert low.node_visits >= high.node_visits

    def test_pruning_reduces_visits_not_results(self):
        db = make_random_db(16, max_transactions=30, max_items=10)
        on_result, on = counted(db, 10, "ista", prune=True, prune_interval=1)
        off_result, off = counted(db, 10, "ista", prune=False)
        assert on_result == off_result
        assert on.node_visits <= off.node_visits

    def test_counters_accumulate_across_runs(self):
        db = make_random_db(17, max_transactions=10, max_items=8)
        counters = OperationCounters()
        mine(db, 2, algorithm="ista", counters=counters)
        first = counters.node_visits
        mine(db, 2, algorithm="ista", counters=counters)
        assert counters.node_visits == 2 * first

"""Front-door validation in mine(): fail fast, fail clearly."""

from __future__ import annotations

import pytest

from repro.data.database import TransactionDatabase
from repro.mining import mine
from repro.result import MiningResult


def _db():
    return TransactionDatabase.from_iterable(
        [["a", "b"], ["a", "b", "c"], ["b", "c"]]
    )


class TestSminValidation:
    def test_zero_and_negative_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            mine(_db(), 0)
        with pytest.raises(ValueError, match="at least 1"):
            mine(_db(), -3)

    def test_bool_rejected(self):
        # bool is an int subclass; mine(db, True) is almost certainly a
        # bug at the call site, not a request for smin=1.
        with pytest.raises(TypeError, match="smin"):
            mine(_db(), True)

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError, match="smin"):
            mine(_db(), "2")
        with pytest.raises(TypeError, match="smin"):
            mine(_db(), None)

    def test_relative_bounds(self):
        with pytest.raises(ValueError, match="relative"):
            mine(_db(), 1.5)
        with pytest.raises(ValueError, match="relative"):
            mine(_db(), 0.0)
        with pytest.raises(ValueError, match="relative"):
            mine(_db(), -0.2)

    def test_relative_support_still_works(self):
        assert mine(_db(), 0.5) == mine(_db(), 2)


class TestAlgorithmValidation:
    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(ValueError, match="unknown algorithm") as info:
            mine(_db(), 2, algorithm="istaa")
        assert "did you mean 'ista'" in str(info.value)

    def test_unknown_name_without_near_miss(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            mine(_db(), 2, algorithm="xyzzy")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError, match="algorithm"):
            mine(_db(), 2, algorithm=7)

    def test_unknown_target(self):
        with pytest.raises(ValueError, match="unknown target"):
            mine(_db(), 2, target="frequent")

    def test_bad_on_partial(self):
        with pytest.raises(ValueError, match="on_partial"):
            mine(_db(), 2, on_partial="ignore")

    def test_unknown_fallback_chain_member(self):
        # A typo'd chain must fail loudly up front, not silently drop
        # the safety net the user thought they had.
        with pytest.raises(ValueError, match="fallback chain") as info:
            mine(_db(), 2, timeout=30.0, fallback="carpneter-lists")
        assert "did you mean 'carpenter-lists'" in str(info.value)


class TestEmptyDatabase:
    def test_empty_db_returns_empty_result(self):
        empty = TransactionDatabase.from_iterable([])
        result = mine(empty, 2)
        assert isinstance(result, MiningResult)
        assert len(result) == 0
        assert result.algorithm == "ista"
        assert not result.interrupted

    def test_empty_db_still_validates_arguments(self):
        empty = TransactionDatabase.from_iterable([])
        with pytest.raises(ValueError, match="at least 1"):
            mine(empty, 0)
        with pytest.raises(ValueError, match="unknown algorithm"):
            mine(empty, 2, algorithm="nope")

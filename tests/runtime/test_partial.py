"""Anytime results: what an interrupted run salvages must be *true*.

For every closed-target algorithm, an injected interruption's partial
result must contain only sets that are genuinely closed in the full
database, with their exact supports — the integrity contract documented
in docs/robustness.md.  (The prefix-intersection miners run their
mid-stream repository through ``refine_anytime`` to get there; the
enumeration miners' mid-run stores satisfy it by construction.)
"""

from __future__ import annotations

import random

import pytest

from repro.closure import galois
from repro.data import itemset
from repro.data.database import TransactionDatabase
from repro.mining import mine
from repro.runtime import FaultPlan, MiningTimeout, RunGuard

CLOSED_ALGORITHMS = (
    "ista",
    "cumulative-flat",
    "carpenter-lists",
    "carpenter-table",
    "cobbler",
    "eclat",
    "fpgrowth",
    "lcm",
    "sam",
)


def _db(seed: int = 11, n: int = 18, m: int = 20) -> TransactionDatabase:
    rng = random.Random(seed)
    rows = [
        [item for item in range(m) if rng.random() < 0.5] for _ in range(n)
    ]
    return TransactionDatabase.from_iterable(rows, item_order=list(range(m)))


DB = _db()
SMIN = 3


@pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
@pytest.mark.parametrize("trip_at", (20, 200))
def test_partial_sets_are_closed_with_exact_supports(algorithm, trip_at):
    guard = RunGuard(fault_plan=FaultPlan(timeout_at=trip_at), stride=1)
    with pytest.raises(MiningTimeout) as info:
        mine(DB, SMIN, algorithm=algorithm, guard=guard)
    partial = info.value.partial
    assert partial is not None, "driver failed to salvage a partial result"
    for mask in partial:
        assert galois.is_closed(DB, mask), (
            f"{algorithm} salvaged a non-closed set {itemset.to_indices(mask)}"
        )
        true_support = itemset.size(galois.cover(DB, mask))
        assert partial[mask] == true_support
        assert true_support >= SMIN


@pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
def test_partial_is_subset_of_full_family(algorithm):
    reference = mine(DB, SMIN, algorithm="lcm")
    guard = RunGuard(fault_plan=FaultPlan(timeout_at=200), stride=1)
    with pytest.raises(MiningTimeout) as info:
        mine(DB, SMIN, algorithm=algorithm, guard=guard)
    partial = info.value.partial
    assert partial is not None
    for mask in partial:
        assert reference.support_of(mask) == partial[mask]


def test_late_trip_salvages_nonempty_partial():
    # By check 200 every algorithm on this input has reported something.
    guard = RunGuard(fault_plan=FaultPlan(timeout_at=200), stride=1)
    with pytest.raises(MiningTimeout) as info:
        mine(DB, SMIN, algorithm="lcm", guard=guard)
    assert info.value.partial is not None
    assert len(info.value.partial) > 0


def test_cumulative_reports_processed_count():
    guard = RunGuard(fault_plan=FaultPlan(timeout_at=50), stride=1)
    with pytest.raises(MiningTimeout) as info:
        mine(DB, SMIN, algorithm="cumulative-flat", guard=guard)
    assert info.value.processed is not None
    assert 0 <= info.value.processed <= DB.n_transactions

"""CLI exit-code discipline: 0 success, 2 user error, 3 budget tripped."""

from __future__ import annotations

import random
import time

import pytest

from repro.cli import EXIT_INTERRUPTED, EXIT_USER_ERROR, main

FIXTURE = "tests/fixtures/corrupt.fimi"


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.fimi"
    path.write_text("1 2 3\n2 3\n1 3\n")
    return str(path)


@pytest.fixture
def corrupt_file(tmp_path):
    path = tmp_path / "corrupt.fimi"
    path.write_bytes(b"1 2 3\n2 \x00 3\n1 3\n")
    return str(path)


@pytest.fixture
def pathological_file(tmp_path):
    # Dense random rows: the closed family explodes, so any algorithm
    # at low support will outlive a subsecond budget here.
    rng = random.Random(42)
    path = tmp_path / "dense.fimi"
    lines = [
        " ".join(str(j) for j in range(72) if rng.random() < 0.6)
        for _ in range(64)
    ]
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestUserErrors:
    def test_missing_file_exits_2(self, capsys):
        assert main(["mine", "/no/such/file.fimi", "-s", "2"]) == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert err.startswith("repro-mine:")
        assert err.count("\n") == 1  # one-line message, no traceback

    def test_corrupt_file_exits_2(self, corrupt_file, capsys):
        assert main(["mine", corrupt_file, "-s", "2"]) == EXIT_USER_ERROR
        assert "line 2" in capsys.readouterr().err

    def test_checked_in_corrupt_fixture_exits_2(self):
        # The same invocation the CI smoke job runs.
        assert main(["mine", FIXTURE, "-s", "2"]) == EXIT_USER_ERROR

    def test_bad_smin_exits_2(self, clean_file, capsys):
        assert main(["mine", clean_file, "-s", "0"]) == EXIT_USER_ERROR
        assert "at least 1" in capsys.readouterr().err

    def test_skip_mode_recovers(self, corrupt_file, capsys):
        assert main(["mine", corrupt_file, "-s", "2", "--errors", "skip"]) == 0
        assert "skipped 1 corrupt line" in capsys.readouterr().err


class TestBudgetTrips:
    def test_timeout_exits_3_quickly(self, pathological_file, capsys):
        start = time.monotonic()
        code = main(
            [
                "mine",
                pathological_file,
                "-s",
                "3",
                "-a",
                "carpenter-table",
                "--timeout",
                "0.3",
            ]
        )
        wall = time.monotonic() - start
        assert code == EXIT_INTERRUPTED
        assert wall < 5.0  # the guard, not the heat death of the universe
        assert "timeout" in capsys.readouterr().err

    def test_on_partial_return_prints_and_exits_3(self, pathological_file, capsys):
        code = main(
            [
                "mine",
                pathological_file,
                "-s",
                "2",
                "-a",
                "lcm",
                "--timeout",
                "0.3",
                "--on-partial",
                "return",
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        assert "PARTIAL" in captured.err
        assert captured.out  # the salvaged sets were printed

    def test_generous_timeout_exits_0(self, clean_file):
        assert main(["mine", clean_file, "-s", "2", "--timeout", "60"]) == 0


class TestFallbackFlag:
    def test_fallback_notes_path_on_stderr(self, pathological_file, capsys):
        # cumulative-flat's repository explodes regardless of smin; lcm
        # at this high support finishes in milliseconds.
        code = main(
            [
                "mine",
                pathological_file,
                "-s",
                "30",
                "-a",
                "cumulative-flat",
                "--timeout",
                "1.0",
                "--fallback",
                "lcm",
            ]
        )
        captured = capsys.readouterr()
        if code == 0:
            # cumulative-flat tripped, lcm finished inside its budget.
            assert "fell back after cumulative-flat" in captured.err
        else:
            # Slow machine: both tripped — still the budget exit.
            assert code == EXIT_INTERRUPTED

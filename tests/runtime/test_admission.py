"""Admission control: the bounded counter and the per-request guard."""

from __future__ import annotations

import threading

import pytest

from repro.core.incremental import IncrementalMiner
from repro.runtime import (
    AdmissionController,
    MiningTimeout,
    Saturated,
    request_guard,
)


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(retry_after=0)

    def test_lifecycle_counts(self):
        controller = AdmissionController(max_inflight=2, max_queue=1)
        controller.admit()
        assert controller.snapshot() == {
            "inflight": 0, "waiting": 1, "admitted": 1, "rejected": 0,
        }
        controller.start()
        assert controller.snapshot()["inflight"] == 1
        assert controller.snapshot()["waiting"] == 0
        controller.release()
        assert controller.snapshot() == {
            "inflight": 0, "waiting": 0, "admitted": 1, "rejected": 0,
        }

    def test_saturation_raises_with_retry_after(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=1, retry_after=3.5
        )
        controller.admit()
        controller.admit()
        with pytest.raises(Saturated) as caught:
            controller.admit()
        assert caught.value.retry_after == 3.5
        assert "saturated" in str(caught.value)
        assert controller.snapshot()["rejected"] == 1
        # Freeing one token re-opens the queue.
        controller.release()
        controller.admit()

    def test_release_before_start_returns_waiting_token(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        controller.admit()
        controller.release()  # a cancelled wait never reached start()
        assert controller.snapshot()["waiting"] == 0
        controller.admit()  # slot genuinely free again

    def test_unmatched_calls_are_errors(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError):
            controller.start()
        with pytest.raises(RuntimeError):
            controller.release()

    def test_thread_safety_under_contention(self):
        controller = AdmissionController(max_inflight=4, max_queue=4)
        outcomes = []

        def worker():
            try:
                controller.admit()
            except Saturated:
                outcomes.append("rejected")
                return
            controller.start()
            controller.release()
            outcomes.append("served")

        threads = [threading.Thread(target=worker) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        snapshot = controller.snapshot()
        assert snapshot["inflight"] == 0 and snapshot["waiting"] == 0
        assert len(outcomes) == 32
        assert snapshot["admitted"] == outcomes.count("served")
        assert snapshot["rejected"] == outcomes.count("rejected")


def _tiny_miner():
    miner = IncrementalMiner()
    miner.extend([["a", "b"], ["b", "c"], ["a", "b", "c"]])
    return miner


class TestRequestGuard:
    def test_no_budget_is_free(self):
        miner = _tiny_miner()
        before = miner._check
        with request_guard(miner) as guard:
            assert guard is None
            assert miner._check is before
        assert miner._check is before

    def test_hook_installed_and_restored(self):
        miner = _tiny_miner()
        before = miner._check
        with request_guard(miner, timeout=60.0) as guard:
            assert guard is not None
            assert miner._check is not before
            assert dict(miner.closed_sets(2))  # polls the guard, passes
        assert miner._check is before

    def test_expired_budget_trips_before_any_work(self):
        miner = _tiny_miner()
        before = miner._check
        ran = []
        with pytest.raises(MiningTimeout):
            with request_guard(miner, timeout=0.0):
                ran.append(True)  # pragma: no cover - must not execute
        assert not ran
        assert miner._check is before

    def test_hook_restored_on_body_exception(self):
        miner = _tiny_miner()
        before = miner._check
        with pytest.raises(RuntimeError):
            with request_guard(miner, timeout=60.0):
                raise RuntimeError("body failed")
        assert miner._check is before

    def test_without_miner_still_enforces_budget(self):
        with pytest.raises(MiningTimeout):
            with request_guard(timeout=0.0):
                pass  # pragma: no cover - must not execute
        with request_guard(timeout=60.0) as guard:
            guard.check()

"""FallbackPolicy: chain ordering, partial handoff, cancellation rules."""

from __future__ import annotations

import random

import pytest

from repro.data.database import TransactionDatabase
from repro.mining import mine
from repro.runtime import (
    DEFAULT_CHAIN,
    CancellationToken,
    FallbackPolicy,
    FaultPlan,
    MiningCancelled,
    MiningTimeout,
    RunGuard,
)


def _db(seed: int = 3, n: int = 20, m: int = 24) -> TransactionDatabase:
    rng = random.Random(seed)
    rows = [
        [item for item in range(m) if rng.random() < 0.5] for _ in range(n)
    ]
    return TransactionDatabase.from_iterable(rows, item_order=list(range(m)))


DB = _db()


class TestCoerce:
    def test_none_and_false_mean_no_policy(self):
        assert FallbackPolicy.coerce(None) is None
        assert FallbackPolicy.coerce(False) is None

    def test_true_and_default_select_default_chain(self):
        assert FallbackPolicy.coerce(True).chain == DEFAULT_CHAIN
        assert FallbackPolicy.coerce("default").chain == DEFAULT_CHAIN

    def test_comma_string_and_sequence(self):
        assert FallbackPolicy.coerce("lcm, eclat").chain == ("lcm", "eclat")
        assert FallbackPolicy.coerce(["lcm", "eclat"]).chain == ("lcm", "eclat")

    def test_policy_passes_through(self):
        policy = FallbackPolicy(("lcm",), on_partial="return")
        assert FallbackPolicy.coerce(policy) is policy

    def test_invalid(self):
        with pytest.raises(ValueError, match="empty fallback chain"):
            FallbackPolicy.coerce("  , ")
        with pytest.raises(ValueError, match="fallback policy"):
            FallbackPolicy.coerce(42)
        with pytest.raises(ValueError, match="on_partial"):
            FallbackPolicy(on_partial="ignore")


class TestChain:
    def test_falls_through_to_surviving_algorithm(self):
        # First two attempts are forced down; the third runs clean.
        plan = FaultPlan(timeout_at=3, max_trips=2)
        guard = RunGuard(fault_plan=plan, stride=1)
        reference = mine(DB, 3, algorithm="ista")
        result = mine(
            DB,
            3,
            algorithm="carpenter-table",
            guard=guard,
            fallback="carpenter-lists,ista,lcm",
        )
        assert result.fallback_path == ("carpenter-table", "carpenter-lists")
        assert result.algorithm == "ista"
        assert result == reference
        assert not result.interrupted
        assert len(plan.trips) == 2

    def test_requested_algorithm_not_retried(self):
        plan = FaultPlan(timeout_at=3, max_trips=1)
        guard = RunGuard(fault_plan=plan, stride=1)
        result = mine(
            DB, 3, algorithm="ista", guard=guard, fallback="ista,lcm"
        )
        # "ista" appears in the chain but already failed as the primary
        # attempt; the fallback goes straight to lcm.
        assert result.fallback_path == ("ista",)
        assert result.algorithm == "lcm"

    def test_whole_chain_tripping_raises_last_interruption(self):
        guard = RunGuard(fault_plan=FaultPlan(timeout_at=3), stride=1)
        with pytest.raises(MiningTimeout) as info:
            mine(DB, 3, algorithm="carpenter-table", guard=guard, fallback="lcm")
        assert info.value.fallback_path == ("carpenter-table", "lcm")

    def test_on_partial_return_hands_back_best_anytime_result(self):
        guard = RunGuard(fault_plan=FaultPlan(timeout_at=60), stride=1)
        result = mine(
            DB,
            3,
            algorithm="lcm",
            guard=guard,
            fallback=FallbackPolicy(("eclat",), on_partial="return"),
        )
        assert result.interrupted
        assert result.fallback_path == ("lcm", "eclat")
        assert len(result) > 0
        # Each salvaged support is genuine (spot check against a full run).
        reference = mine(DB, 3, algorithm="ista")
        for mask in result:
            assert reference.support_of(mask) == result[mask]

    def test_cancellation_is_never_retried(self):
        token = CancellationToken()
        token.cancel("user hit ctrl-c")
        with pytest.raises(MiningCancelled):
            mine(DB, 3, algorithm="ista", cancel=token, fallback=True)

    def test_target_all_skips_closed_only_chain_members(self):
        plan = FaultPlan(timeout_at=3, max_trips=1)
        guard = RunGuard(fault_plan=plan, stride=1)
        result = mine(
            DB,
            6,
            algorithm="eclat",
            target="all",
            guard=guard,
            fallback="ista,fpgrowth",
        )
        # ista is closed-only, so the chain for target="all" must skip
        # it and land on fpgrowth.
        assert result.algorithm == "fpgrowth"
        assert result.fallback_path == ("eclat",)

"""Fault injection: every algorithm's guard polling actually unwinds it.

The FaultPlan keys on the guard's deterministic check count, so these
tests prove each driver polls its guard at its loop heads — without
needing pathologically slow inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.data.database import TransactionDatabase
from repro.mining import ALGORITHMS, mine
from repro.runtime import (
    CancellationToken,
    FaultPlan,
    InjectedCrash,
    MemoryBudgetExceeded,
    MiningCancelled,
    MiningTimeout,
    RunGuard,
)


def _dense_db(seed: int = 7, n: int = 25, m: int = 36) -> TransactionDatabase:
    rng = random.Random(seed)
    rows = [
        [item for item in range(m) if rng.random() < 0.5] for _ in range(n)
    ]
    return TransactionDatabase.from_iterable(rows, item_order=list(range(m)))


DB = _dense_db()


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_injected_timeout_trips_every_algorithm(algorithm):
    guard = RunGuard(fault_plan=FaultPlan(timeout_at=5), stride=1)
    with pytest.raises(MiningTimeout) as info:
        mine(DB, 3, algorithm=algorithm, guard=guard)
    assert info.value.injected
    assert info.value.checks >= 5
    assert info.value.algorithm  # driver identified itself on the way out


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_injected_memory_trip(algorithm):
    guard = RunGuard(fault_plan=FaultPlan(memory_at=5), stride=1)
    with pytest.raises(MemoryBudgetExceeded) as info:
        mine(DB, 3, algorithm=algorithm, guard=guard)
    assert info.value.injected


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_injected_cancel_trip(algorithm):
    guard = RunGuard(fault_plan=FaultPlan(cancel_at=5), stride=1)
    with pytest.raises(MiningCancelled):
        mine(DB, 3, algorithm=algorithm, guard=guard)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_real_timeout_trips_every_algorithm(algorithm):
    # A zero-second budget must stop the run at the first real check.
    with pytest.raises(MiningTimeout):
        mine(DB, 3, algorithm=algorithm, timeout=0.0)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_precancelled_token_stops_before_work(algorithm):
    token = CancellationToken()
    token.cancel("test")
    with pytest.raises(MiningCancelled) as info:
        mine(DB, 3, algorithm=algorithm, cancel=token)
    # First real check fires before any substantial mining work.
    assert info.value.checks <= 1


def test_fault_plan_records_trips():
    plan = FaultPlan(timeout_at=5)
    guard = RunGuard(fault_plan=plan, stride=1)
    with pytest.raises(MiningTimeout):
        mine(DB, 3, algorithm="ista", guard=guard)
    assert plan.trips == [("timeout", plan.trips[0][1])]
    assert plan.trips[0][1] >= 5


def test_max_trips_disarms():
    plan = FaultPlan(timeout_at=1, max_trips=1)
    guard = RunGuard(fault_plan=plan, stride=1)
    with pytest.raises(MiningTimeout):
        mine(DB, 3, algorithm="lcm", guard=guard)
    assert not plan.armed
    # Disarmed: the same plan no longer interferes.
    result = mine(DB, 3, algorithm="lcm", guard=guard.respawn())
    assert len(result) > 0


def test_guard_shorthand_and_explicit_guard_conflict():
    with pytest.raises(ValueError, match="not both"):
        mine(DB, 3, guard=RunGuard(), timeout=1.0)


class TestCrashPoints:
    """FaultPlan.reach: named-boundary crash injection for the durable
    serving pipeline."""

    def test_reach_counts_arrivals_without_firing(self):
        plan = FaultPlan()
        for _ in range(3):
            plan.reach("wal.append")
        plan.reach("fold")
        assert plan.point_hits == {"wal.append": 3, "fold": 1}
        assert plan.trips == []

    def test_crash_fires_on_chosen_hit_only(self):
        plan = FaultPlan(crash_at="compact.save", crash_on_hit=2)
        plan.reach("compact.save")  # hit 1: armed but below threshold
        plan.reach("compact")       # different point: never fires
        with pytest.raises(InjectedCrash) as info:
            plan.reach("compact.save")
        assert info.value.point == "compact.save"
        assert info.value.hits == 2
        assert plan.trips == [("crash:compact.save", 2)]

    def test_injected_crash_is_not_an_ordinary_exception(self):
        # A real SIGKILL gives cleanup code no chance; the simulation
        # must therefore not be catchable by `except Exception`.
        assert not issubclass(InjectedCrash, Exception)
        plan = FaultPlan(crash_at="wal.prune")
        with pytest.raises(InjectedCrash):
            try:
                plan.reach("wal.prune")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("InjectedCrash was swallowed as an Exception")

    def test_max_trips_disarms_crash_points_too(self):
        plan = FaultPlan(crash_at="fold", max_trips=1)
        with pytest.raises(InjectedCrash):
            plan.reach("fold")
        plan.reach("fold")  # disarmed: counted, not raised
        assert plan.point_hits["fold"] == 2

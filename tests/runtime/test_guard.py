"""RunGuard mechanics: stride sampling, budgets, cancellation, progress."""

from __future__ import annotations

import time

import pytest

from repro.runtime import (
    CancellationToken,
    MemoryBudgetExceeded,
    MiningCancelled,
    MiningTimeout,
    RunGuard,
)
from repro.runtime.guard import checker
from repro.stats import OperationCounters


class TestCheckSampling:
    def test_first_check_is_real(self):
        # A pre-expired deadline must trip on the very first check even
        # with a huge stride — otherwise a driver could burn a full
        # stride of work before noticing.
        guard = RunGuard(timeout=0.0, stride=10_000)
        with pytest.raises(MiningTimeout):
            guard.check()
        assert guard.checks == 1
        assert guard.real_checks == 1

    def test_stride_sampling(self):
        guard = RunGuard(stride=64)
        for _ in range(1000):
            guard.check()
        assert guard.checks == 1000
        # 1 first check + every 64th thereafter.
        assert guard.real_checks == pytest.approx(1000 / 64, abs=2)

    def test_invalid_config(self):
        with pytest.raises(ValueError, match="timeout"):
            RunGuard(timeout=-1)
        with pytest.raises(ValueError, match="memory limit"):
            RunGuard(memory_limit_mb=0)
        with pytest.raises(ValueError, match="stride"):
            RunGuard(stride=0)
        with pytest.raises(ValueError, match="memory meter"):
            RunGuard(memory_meter="psutil")


class TestDeadline:
    def test_timeout_trips(self):
        guard = RunGuard(timeout=0.02, stride=1)
        deadline = time.monotonic() + 5.0
        with pytest.raises(MiningTimeout, match="timeout"):
            while time.monotonic() < deadline:
                guard.check()

    def test_absolute_deadline(self):
        guard = RunGuard(deadline=time.monotonic() - 1.0, stride=1)
        with pytest.raises(MiningTimeout, match="deadline"):
            guard.check()

    def test_remaining(self):
        guard = RunGuard(timeout=60.0)
        assert 0 < guard.remaining() <= 60.0
        assert RunGuard().remaining() is None
        assert RunGuard().elapsed() >= 0.0


class TestMemoryBudget:
    def test_tracemalloc_budget_trips(self):
        guard = RunGuard(memory_limit_mb=0.25, stride=1)
        try:
            hoard = []
            with pytest.raises(MemoryBudgetExceeded) as info:
                for _ in range(10_000):
                    hoard.append(bytearray(4096))
                    guard.check()
            assert info.value.used_bytes > info.value.limit_bytes
            del hoard
        finally:
            guard.finish()

    def test_unmetered_memory_used_is_none(self):
        assert RunGuard().memory_used() is None

    def test_finish_stops_owned_tracing(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        guard = RunGuard(memory_limit_mb=100)
        guard.finish()
        assert tracemalloc.is_tracing() == was_tracing


class TestCancellation:
    def test_precancelled_trips_immediately(self):
        token = CancellationToken()
        token.cancel("operator said stop")
        guard = RunGuard(cancel=token, stride=1)
        with pytest.raises(MiningCancelled, match="operator said stop"):
            guard.check()

    def test_cancel_mid_run(self):
        token = CancellationToken()
        guard = RunGuard(cancel=token, stride=1)
        guard.check()
        token.cancel()
        with pytest.raises(MiningCancelled):
            guard.check()


class TestProgress:
    def test_progress_callback_fires(self):
        seen = []
        guard = RunGuard(progress=seen.append, progress_interval=0.0, stride=1)
        for _ in range(5):
            guard.check()
        assert len(seen) >= 1
        info = seen[0]
        assert info.elapsed >= 0.0
        assert info.checks >= 1

    def test_progress_sees_counters(self):
        seen = []
        guard = RunGuard(progress=seen.append, progress_interval=0.0, stride=1)
        counters = OperationCounters()
        counters.intersections = 7
        check = checker(guard, counters)
        check()
        assert seen and seen[0].counters.get("intersections") == 7


class TestChecker:
    def test_none_guard_is_noop(self):
        check = checker(None, OperationCounters())
        for _ in range(100):
            check()  # must never raise

    def test_binds_counters_once(self):
        guard = RunGuard()
        first = OperationCounters()
        second = OperationCounters()
        checker(guard, first)
        checker(guard, second)
        assert guard.counters is first


class TestRespawn:
    def test_respawn_shares_cancel_and_faults(self):
        token = CancellationToken()
        guard = RunGuard(timeout=5.0, cancel=token)
        fresh = guard.respawn()
        assert fresh is not guard
        assert fresh.cancel is token
        assert fresh.timeout == 5.0
        assert fresh.checks == 0

    def test_interrupt_carries_counter_snapshot(self):
        guard = RunGuard(timeout=0.0, stride=1)
        counters = OperationCounters()
        counters.recursion_calls = 42
        check = checker(guard, counters)
        with pytest.raises(MiningTimeout) as info:
            check()
        assert info.value.counters.get("recursion_calls") == 42
        assert info.value.checks == 1

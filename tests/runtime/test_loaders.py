"""Loader hardening: corrupt input is named, skippable, and countable."""

from __future__ import annotations

import io

import pytest

from repro.data.arff import parse_arff, read_arff
from repro.data.io import LoadReport, parse_fimi, read_expression_matrix, read_fimi
from repro.runtime import CorruptInputError


class TestFimiCorruption:
    def test_control_bytes_raise_with_location(self, tmp_path):
        path = tmp_path / "bad.fimi"
        path.write_bytes(b"1 2 3\n2 \x00 3\n1 3\n")
        with pytest.raises(CorruptInputError) as info:
            read_fimi(path)
        assert info.value.line_number == 2
        assert str(path) in str(info.value)
        assert info.value.source == str(path)

    def test_corrupt_error_is_a_value_error(self):
        # Backwards compatibility: callers catching ValueError keep working.
        assert issubclass(CorruptInputError, ValueError)

    def test_undecodable_bytes_raise_not_crash(self, tmp_path):
        path = tmp_path / "latin.fimi"
        path.write_bytes(b"1 2\n\xff\xfe garbage\n")
        with pytest.raises(CorruptInputError) as info:
            read_fimi(path)
        assert info.value.line_number == 2

    def test_skip_mode_counts_dropped_lines(self, tmp_path):
        path = tmp_path / "bad.fimi"
        path.write_bytes(b"1 2 3\n2 \x00 3\n1 3\n\x01\n")
        report = LoadReport()
        db = read_fimi(path, errors="skip", report=report)
        assert db.n_transactions == 2
        assert report.lines_read == 2
        assert report.lines_skipped == 2
        assert report.skipped_line_numbers == [2, 4]
        assert report.source == str(path)

    def test_skip_without_report_is_fine(self, tmp_path):
        path = tmp_path / "bad.fimi"
        path.write_bytes(b"1 2\n\x00\n")
        assert read_fimi(path, errors="skip").n_transactions == 1

    def test_bad_errors_mode(self):
        with pytest.raises(ValueError, match="errors"):
            parse_fimi("1 2\n", errors="replace")

    def test_clean_file_unaffected(self):
        report = LoadReport()
        db = parse_fimi("1 2 3\n2 3\n", report=report)
        assert db.n_transactions == 2
        assert report.lines_read == 2
        assert report.lines_skipped == 0


class TestArffCorruption:
    GOOD_HEADER = (
        "@relation t\n"
        "@attribute a {0, 1}\n"
        "@attribute b {0, 1}\n"
        "@data\n"
    )

    def test_malformed_row_raises_with_location(self):
        with pytest.raises(CorruptInputError) as info:
            parse_arff(self.GOOD_HEADER + "1,1\nbroken row\n", source="x.arff")
        assert info.value.line_number == 6
        assert info.value.source == "x.arff"

    def test_skip_mode_drops_bad_rows_only(self):
        report = LoadReport()
        db = parse_arff(
            self.GOOD_HEADER + "1,1\nbroken\n0,1\n",
            errors="skip",
            report=report,
        )
        assert db.n_transactions == 2
        assert report.lines_skipped == 1
        assert report.skipped_line_numbers == [6]

    def test_header_errors_always_raise(self):
        # A broken header invalidates everything after it; skip mode
        # must not paper over it.
        with pytest.raises(CorruptInputError, match="no @data"):
            parse_arff("@relation t\n@attribute a {0, 1}\n", errors="skip")
        with pytest.raises(CorruptInputError, match="unexpected header"):
            parse_arff("@relation t\nwhat is this\n@data\n", errors="skip")

    def test_sparse_garbage_index(self):
        with pytest.raises(CorruptInputError, match="malformed sparse"):
            parse_arff(self.GOOD_HEADER + "{zero 1}\n")

    def test_read_arff_names_the_file(self, tmp_path):
        path = tmp_path / "bad.arff"
        path.write_text(self.GOOD_HEADER + "1,1,1\n")
        with pytest.raises(CorruptInputError) as info:
            read_arff(path)
        assert info.value.source == str(path)


class TestExpressionMatrixCorruption:
    def test_field_count_mismatch(self):
        stream = io.StringIO("gene\tc1\tc2\ng1\t1.0\n")
        with pytest.raises(CorruptInputError, match="expected 3 fields"):
            read_expression_matrix(stream)

    def test_non_numeric_value(self):
        stream = io.StringIO("gene\tc1\ng1\tnot-a-number\n")
        with pytest.raises(CorruptInputError, match="non-numeric") as info:
            read_expression_matrix(stream)
        assert info.value.line_number == 2

    def test_empty_file(self):
        with pytest.raises(CorruptInputError, match="empty"):
            read_expression_matrix(io.StringIO(""))

"""Sharded multiprocess mining: exactness, budgets, failure reporting."""

import pytest

import repro.parallel as parallel_module
from repro import TransactionDatabase, mine, mine_parallel
from repro.parallel import ShardOutcome, _shard_masks, plan_shards
from repro.runtime import MiningInterrupted

from .conftest import make_random_db

PARALLEL_ALGORITHMS = ("ista", "carpenter-lists", "carpenter-table", "eclat", "lcm")


class TestPlanShards:
    def test_partitions_items(self):
        db = make_random_db(3, max_transactions=8, max_items=8)
        ranges = plan_shards(db, "items", 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == db.n_items
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start

    def test_partitions_transactions(self):
        db = make_random_db(4, max_transactions=9)
        ranges = plan_shards(db, "transactions", 4)
        assert sum(end - start for start, end in ranges) == db.n_transactions

    def test_more_shards_than_units(self):
        db = make_random_db(5, max_transactions=3, max_items=3)
        ranges = plan_shards(db, "items", 50)
        assert len(ranges) <= db.n_items
        assert all(start < end for start, end in ranges)

    def test_empty_database(self):
        db = TransactionDatabase.from_masks([], n_items=0)
        assert plan_shards(db, "items", 4) == []

    def test_shard_masks_cover_database(self):
        db = make_random_db(6, max_transactions=10, max_items=8)
        for scheme in ("items", "transactions"):
            ranges = plan_shards(db, scheme, 3)
            union = 0
            for start, end in ranges:
                for mask in _shard_masks(db, scheme, start, end):
                    union |= mask
            full = 0
            for t in db.transactions:
                full |= t
            assert union == full


class TestExactness:
    """The merged parallel result must equal the serial result, always."""

    @pytest.mark.parametrize("algorithm", PARALLEL_ALGORITHMS)
    @pytest.mark.parametrize("shard", ["items", "transactions"])
    def test_inline_parity(self, algorithm, shard):
        for seed in range(4):
            db = make_random_db(seed, max_transactions=12, max_items=9)
            smin = 1 + seed % 3
            serial = dict(mine(db, smin, algorithm=algorithm))
            got = mine_parallel(
                db, smin, algorithm=algorithm, shard=shard, n_workers=1
            )
            assert dict(got) == serial, f"seed={seed}"
            assert got.algorithm == f"{algorithm}+parallel"

    @pytest.mark.parametrize("shard", ["items", "transactions"])
    def test_process_pool_parity(self, shard):
        db = make_random_db(21, max_transactions=14, max_items=10)
        serial = dict(mine(db, 2, algorithm="ista"))
        got = mine_parallel(db, 2, algorithm="ista", shard=shard, n_workers=3)
        assert dict(got) == serial

    def test_auto_shard_scheme(self):
        db = make_random_db(8, max_transactions=10, max_items=8)
        for algorithm in ("ista", "eclat"):
            serial = dict(mine(db, 2, algorithm=algorithm))
            assert dict(mine_parallel(db, 2, algorithm=algorithm, n_workers=2)) == serial

    def test_maximal_target(self):
        db = make_random_db(13, max_transactions=12, max_items=8)
        serial = dict(mine(db, 2, algorithm="ista", target="maximal"))
        got = mine_parallel(db, 2, algorithm="ista", target="maximal", n_workers=2)
        assert dict(got) == serial
        assert got.algorithm == "ista+parallel-maximal"

    @pytest.mark.parametrize("backend", ["bitint", "numpy"])
    def test_backend_forwarded(self, backend):
        db = make_random_db(17, max_transactions=10, max_items=8)
        serial = dict(mine(db, 2, algorithm="carpenter-table"))
        got = mine_parallel(
            db, 2, algorithm="carpenter-table", backend=backend, n_workers=2
        )
        assert dict(got) == serial

    def test_empty_database(self):
        db = TransactionDatabase.from_masks([], n_items=0)
        result = mine_parallel(db, 1, n_workers=2)
        assert dict(result) == {}

    def test_relative_smin(self):
        db = make_random_db(9, max_transactions=10, max_items=8)
        serial = dict(mine(db, 0.3, algorithm="ista"))
        assert dict(mine_parallel(db, 0.3, n_workers=2)) == serial


class TestValidation:
    @pytest.fixture
    def db(self):
        return make_random_db(2, max_transactions=8, max_items=6)

    def test_rejects_target_all(self, db):
        with pytest.raises(ValueError, match="closed"):
            mine_parallel(db, 2, target="all")

    def test_rejects_unknown_shard(self, db):
        with pytest.raises(ValueError, match="shard"):
            mine_parallel(db, 2, shard="columns")

    def test_rejects_bad_on_partial(self, db):
        with pytest.raises(ValueError, match="on_partial"):
            mine_parallel(db, 2, on_partial="ignore")

    def test_rejects_bad_workers(self, db):
        with pytest.raises(ValueError, match="n_workers"):
            mine_parallel(db, 2, n_workers=0)

    def test_rejects_unknown_backend(self, db):
        with pytest.raises(ValueError):
            mine_parallel(db, 2, backend="cuda")


class TestFailureModes:
    @pytest.fixture
    def db(self):
        return make_random_db(7, max_transactions=12, max_items=9)

    def test_interrupted_shard_raises_with_partial(self, db, monkeypatch):
        outcomes_real = parallel_module._run_shards

        def interrupt_first(payloads, n_workers):
            outcomes = outcomes_real(payloads, 1)
            first = outcomes[0]
            outcomes[0] = ShardOutcome(
                first.index, first.scheme, "interrupted", first.pairs, "budget"
            )
            return outcomes

        monkeypatch.setattr(parallel_module, "_run_shards", interrupt_first)
        with pytest.raises(MiningInterrupted) as info:
            mine_parallel(db, 2, n_workers=1)
        partial = info.value.partial
        assert partial is not None
        serial = dict(mine(db, 2))
        # anytime guarantee: every reported set is correct, support exact
        for mask, support in partial.items():
            assert serial[mask] == support

    def test_interrupted_shard_on_partial_return(self, db, monkeypatch):
        def interrupt_all(payloads, n_workers):
            return [
                ShardOutcome(p["index"], p["scheme"], "interrupted", [], "budget")
                for p in payloads
            ]

        monkeypatch.setattr(parallel_module, "_run_shards", interrupt_all)
        result = mine_parallel(db, 2, n_workers=1, on_partial="return")
        assert result.interrupted
        assert dict(result) == {}

    def test_crashed_shard_raises_runtime_error(self, db, monkeypatch):
        def crash_first(payloads, n_workers):
            return [
                ShardOutcome(p["index"], p["scheme"], "crashed", [], "worker died")
                for p in payloads
            ]

        monkeypatch.setattr(parallel_module, "_run_shards", crash_first)
        with pytest.raises(RuntimeError, match="crashed"):
            mine_parallel(db, 2, n_workers=1)

    def test_per_worker_budget_tiny_timeout(self, db):
        # With a zero-ish budget every shard trips its guard; the merge
        # must then raise MiningInterrupted, never report wrong sets.
        try:
            result = mine_parallel(db, 2, n_workers=1, timeout=0.0)
        except MiningInterrupted:
            return
        serial = dict(mine(db, 2))
        for mask, support in result.items():
            assert serial[mask] == support

"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from typing import List, Sequence

import pytest

from repro.data.database import TransactionDatabase
from repro.data.matrix import example_database

#: Every algorithm that natively produces the closed family.
CLOSED_ALGORITHMS = (
    "ista",
    "cumulative-flat",
    "carpenter-lists",
    "carpenter-table",
    "cobbler",
    "eclat",
    "fpgrowth",
    "lcm",
    "sam",
)


def make_random_db(
    seed: int,
    max_transactions: int = 10,
    max_items: int = 8,
    density: float = 0.5,
) -> TransactionDatabase:
    """Deterministic random database for differential tests."""
    rng = random.Random(seed)
    n = rng.randint(1, max_transactions)
    m = rng.randint(1, max_items)
    rows = [
        [item for item in range(m) if rng.random() < density] for _ in range(n)
    ]
    return TransactionDatabase.from_iterable(rows, item_order=list(range(m)))


def db_from_strings(rows: Sequence[str]) -> TransactionDatabase:
    """Database from strings of single-character items, e.g. ["abc", "bd"]."""
    items = sorted({ch for row in rows for ch in row})
    return TransactionDatabase.from_iterable([list(row) for row in rows], item_order=items)


@pytest.fixture
def table1_db() -> TransactionDatabase:
    """The paper's Table 1 example database."""
    return example_database()


@pytest.fixture
def figure3_db() -> TransactionDatabase:
    """The paper's Figure 3 example: transactions {eca, edb, dcba}."""
    return db_from_strings(["eca", "edb", "dcba"])

"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from typing import List, Sequence

import pytest

from repro.data.database import TransactionDatabase
from repro.data.matrix import example_database

#: Every algorithm that natively produces the closed family.
CLOSED_ALGORITHMS = (
    "ista",
    "cumulative-flat",
    "carpenter-lists",
    "carpenter-table",
    "cobbler",
    "eclat",
    "fpgrowth",
    "lcm",
    "sam",
)


def backend_params() -> List:
    """Every selectable backend as a pytest param; unbuilt ones skip.

    ``available_backends()`` silently omits optional backends whose
    extension is absent, which would make a CI leg without a compiler
    *look* like full coverage.  Parametrising over the selectable set
    instead keeps the ``native`` test IDs in the report as explicit
    SKIPPED rows whenever the extension is not built.
    """
    from repro.kernels import available_backends, selectable_backends

    built = set(available_backends())
    params = []
    for name in selectable_backends():
        marks = (
            ()
            if name in built
            else (
                pytest.mark.skip(
                    reason=f"optional backend {name!r} not built on this install"
                ),
            )
        )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


def backend_kernel_params() -> List:
    """:func:`backend_params`, but carrying the kernel instances."""
    from repro.kernels import get_backend

    return [
        pytest.param(get_backend(param.values[0]), marks=param.marks, id=param.id)
        for param in backend_params()
    ]


def make_random_db(
    seed: int,
    max_transactions: int = 10,
    max_items: int = 8,
    density: float = 0.5,
) -> TransactionDatabase:
    """Deterministic random database for differential tests."""
    rng = random.Random(seed)
    n = rng.randint(1, max_transactions)
    m = rng.randint(1, max_items)
    rows = [
        [item for item in range(m) if rng.random() < density] for _ in range(n)
    ]
    return TransactionDatabase.from_iterable(rows, item_order=list(range(m)))


def db_from_strings(rows: Sequence[str]) -> TransactionDatabase:
    """Database from strings of single-character items, e.g. ["abc", "bd"]."""
    items = sorted({ch for row in rows for ch in row})
    return TransactionDatabase.from_iterable([list(row) for row in rows], item_order=items)


@pytest.fixture
def table1_db() -> TransactionDatabase:
    """The paper's Table 1 example database."""
    return example_database()


@pytest.fixture
def figure3_db() -> TransactionDatabase:
    """The paper's Figure 3 example: transactions {eca, edb, dcba}."""
    return db_from_strings(["eca", "edb", "dcba"])

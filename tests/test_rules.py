"""Tests for association rule induction from closed families."""

import pytest

from repro.closure.verify import closed_frequent_bruteforce
from repro.data import itemset
from repro.rules import AssociationRule, generate_rules, support_of

from .conftest import db_from_strings


@pytest.fixture
def closed_family():
    # {a,b} together 3x, b alone once more, c independent-ish
    db = db_from_strings(["ab", "ab", "ab", "bc", "c"])
    return db, closed_frequent_bruteforce(db, 1)


class TestSupportReconstruction:
    def test_closed_set_support(self, closed_family):
        db, closed = closed_family
        assert support_of(closed, db.encode("ab")) == 3

    def test_non_closed_frequent_set_support(self, closed_family):
        db, closed = closed_family
        # {a} is not closed (always with b) but its support is 3.
        assert support_of(closed, db.encode("a")) == 3

    def test_empty_set(self, closed_family):
        db, closed = closed_family
        assert support_of(closed, 0, n_transactions=5) == 5
        assert support_of(closed, 0) is None

    def test_infrequent_set(self, closed_family):
        db, closed = closed_family
        assert support_of(closed, db.encode("ac")) is None


class TestRuleGeneration:
    def test_high_confidence_rule_found(self, closed_family):
        db, closed = closed_family
        rules = list(generate_rules(closed, db.n_transactions, min_confidence=0.9))
        as_text = {rule.labeled(db.item_labels) for rule in rules}
        # a -> b holds with confidence 1.0 (a always occurs with b)
        assert any(text.startswith("a -> b") for text in as_text)

    def test_confidence_threshold_respected(self, closed_family):
        db, closed = closed_family
        for rule in generate_rules(closed, db.n_transactions, min_confidence=0.8):
            assert rule.confidence >= 0.8

    def test_confidence_and_lift_values(self, closed_family):
        db, closed = closed_family
        rules = {
            (rule.antecedent, rule.consequent): rule
            for rule in generate_rules(closed, db.n_transactions, min_confidence=0.5)
        }
        a, b = db.encode("a"), db.encode("b")
        rule = rules[(a, b)]
        assert rule.support == 3
        assert rule.confidence == pytest.approx(1.0)
        # support(b) = 4 of 5 -> lift = 1.0 / 0.8
        assert rule.lift == pytest.approx(1.25)

    def test_single_item_sets_yield_no_rules(self):
        db = db_from_strings(["a", "a"])
        closed = closed_frequent_bruteforce(db, 1)
        assert list(generate_rules(closed, 2)) == []

    def test_multi_item_consequents(self):
        db = db_from_strings(["abc", "abc", "ab"])
        closed = closed_frequent_bruteforce(db, 1)
        rules = list(
            generate_rules(
                closed, db.n_transactions, min_confidence=0.1, max_consequent_items=2
            )
        )
        # a -> {b, c} is generable from the closed set {a, b, c}.
        assert any(itemset.size(rule.consequent) == 2 for rule in rules)

    def test_invalid_parameters_rejected(self, closed_family):
        db, closed = closed_family
        with pytest.raises(ValueError):
            list(generate_rules(closed, db.n_transactions, min_confidence=0.0))
        with pytest.raises(ValueError):
            list(generate_rules(closed, 0))

    def test_labeled_formatting(self):
        rule = AssociationRule(0b1, 0b10, 3, 0.75, 1.5)
        text = rule.labeled(["x", "y"])
        assert text == "x -> y (supp=3, conf=0.75, lift=1.50)"


class TestRuleMeasures:
    def test_extended_measures(self):
        from repro.rules import rule_measures

        db = db_from_strings(["ab", "ab", "ab", "b", "c"])
        closed = closed_frequent_bruteforce(db, 1)
        rules = {
            (r.antecedent, r.consequent): r
            for r in generate_rules(closed, 5, min_confidence=0.5)
        }
        rule = rules[(db.encode("a"), db.encode("b"))]
        measures = rule_measures(rule, closed, 5)
        assert measures["support"] == pytest.approx(3 / 5)
        assert measures["confidence"] == pytest.approx(1.0)
        assert measures["conviction"] == float("inf")
        # leverage = 3/5 - (3/5)(4/5)
        assert measures["leverage"] == pytest.approx(3 / 5 - (3 / 5) * (4 / 5))
        # jaccard = 3 / (3 + 4 - 3)
        assert measures["jaccard"] == pytest.approx(0.75)

    def test_finite_conviction(self):
        from repro.rules import rule_measures

        db = db_from_strings(["ab", "ab", "a", "b"])
        closed = closed_frequent_bruteforce(db, 1)
        rules = {
            (r.antecedent, r.consequent): r
            for r in generate_rules(closed, 4, min_confidence=0.5)
        }
        rule = rules[(db.encode("a"), db.encode("b"))]
        measures = rule_measures(rule, closed, 4)
        # conf = 2/3, P(b) = 3/4: conviction = (1/4) / (1/3) = 0.75
        assert measures["conviction"] == pytest.approx(0.75)

    def test_unknown_sets_rejected(self):
        from repro.rules import rule_measures

        db = db_from_strings(["ab", "ab"])
        closed = closed_frequent_bruteforce(db, 2)
        bogus = AssociationRule(0b100, 0b1, 1, 0.5, 1.0)
        with pytest.raises(ValueError, match="outside the closed family"):
            rule_measures(bogus, closed, 2)


class TestNonRedundantRules:
    def test_minimal_antecedents(self):
        from repro.rules import generate_nonredundant_rules

        # b -> a is the non-redundant form (b is the minimal generator
        # of the closed set {a, b}).
        db = db_from_strings(["ab", "ab", "a"])
        closed = closed_frequent_bruteforce(db, 1)
        rules = list(generate_nonredundant_rules(db, closed, min_confidence=0.9))
        sides = {(r.antecedent, r.consequent) for r in rules}
        assert (db.encode("b"), db.encode("a")) in sides

    def test_approximate_rules_between_closed_levels(self):
        from repro.rules import generate_nonredundant_rules

        db = db_from_strings(["ab", "ab", "ab", "a"])
        closed = closed_frequent_bruteforce(db, 1)
        rules = list(generate_nonredundant_rules(db, closed, min_confidence=0.7))
        matching = [
            r
            for r in rules
            if r.antecedent == db.encode("a") and r.consequent == db.encode("b")
        ]
        assert matching and matching[0].confidence == pytest.approx(0.75)

    def test_confidence_threshold(self):
        from repro.rules import generate_nonredundant_rules

        db = db_from_strings(["ab", "ab", "a", "a", "a"])
        closed = closed_frequent_bruteforce(db, 1)
        for rule in generate_nonredundant_rules(db, closed, min_confidence=0.9):
            assert rule.confidence >= 0.9

    def test_invalid_confidence_rejected(self):
        from repro.rules import generate_nonredundant_rules

        db = db_from_strings(["ab"])
        closed = closed_frequent_bruteforce(db, 1)
        with pytest.raises(ValueError):
            list(generate_nonredundant_rules(db, closed, min_confidence=0.0))

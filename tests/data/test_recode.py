"""Unit tests for item coding and transaction processing orders (Section 3.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import itemset
from repro.data.database import TransactionDatabase
from repro.data.recode import (
    ITEM_ORDERS,
    TRANSACTION_ORDERS,
    item_order_permutation,
    prepare,
    recode_items,
    reorder_transactions,
    transaction_order_permutation,
)


@pytest.fixture
def db():
    # supports: a=3, b=1, c=2, d=2
    return TransactionDatabase.from_iterable(
        [["a", "b"], ["a", "c"], ["a", "c", "d"], ["d"]],
        item_order=["a", "b", "c", "d"],
    )


class TestItemOrders:
    def test_frequency_ascending_gives_rarest_code_zero(self, db):
        recoded = recode_items(db, "frequency-ascending")
        # b (supp 1) -> 0; c, d (supp 2, tie by old code) -> 1, 2; a -> 3
        assert recoded.item_labels == ["b", "c", "d", "a"]

    def test_frequency_descending(self, db):
        recoded = recode_items(db, "frequency-descending")
        assert recoded.item_labels == ["a", "c", "d", "b"]

    def test_identity_returns_same_object(self, db):
        assert recode_items(db, "identity") is db

    def test_random_is_permutation_and_deterministic(self, db):
        perm1 = item_order_permutation(db, "random", seed=7)
        perm2 = item_order_permutation(db, "random", seed=7)
        assert perm1 == perm2
        assert sorted(perm1) == list(range(db.n_items))

    def test_unknown_order_rejected(self, db):
        with pytest.raises(ValueError, match="unknown item order"):
            recode_items(db, "bogus")

    @given(st.sampled_from(ITEM_ORDERS))
    def test_recoding_preserves_transaction_contents(self, order):
        db = TransactionDatabase.from_iterable(
            [["a", "b"], ["b", "c"], ["c"]], item_order=["a", "b", "c"]
        )
        recoded = recode_items(db, order, seed=3)
        originals = {frozenset(t) for t in db.as_sets()}
        recodeds = {frozenset(t) for t in recoded.as_sets()}
        assert originals == recodeds


class TestTransactionOrders:
    def test_size_ascending(self, db):
        ordered = reorder_transactions(db, "size-ascending")
        assert ordered.transaction_sizes() == sorted(db.transaction_sizes())

    def test_size_descending(self, db):
        ordered = reorder_transactions(db, "size-descending")
        assert ordered.transaction_sizes() == sorted(db.transaction_sizes(), reverse=True)

    def test_identity_returns_same_object(self, db):
        assert reorder_transactions(db, "identity") is db

    def test_random_is_permutation(self, db):
        tids = transaction_order_permutation(db, "random", seed=5)
        assert sorted(tids) == list(range(db.n_transactions))

    def test_lexicographic_ties_use_descending_items(self):
        db = TransactionDatabase.from_iterable(
            [["b", "c"], ["a", "c"]], item_order=["a", "b", "c"]
        )
        ordered = reorder_transactions(db, "lexicographic")
        # both have max item c; next items a < b, so {a, c} first
        assert ordered.as_sets()[0] == ("a", "c")

    def test_unknown_order_rejected(self, db):
        with pytest.raises(ValueError, match="unknown transaction order"):
            reorder_transactions(db, "bogus")

    @given(st.sampled_from(TRANSACTION_ORDERS))
    def test_reordering_is_a_permutation_of_transactions(self, order):
        db = TransactionDatabase.from_iterable(
            [["a"], ["a", "b"], [], ["b", "c"]], item_order=["a", "b", "c"]
        )
        ordered = reorder_transactions(db, order, seed=1)
        assert sorted(ordered.transactions) == sorted(db.transactions)


class TestPrepare:
    def test_prepare_combines_both_orders(self, db):
        prepared = prepare(db)
        assert prepared.transaction_sizes() == sorted(db.transaction_sizes())
        assert prepared.item_labels == ["b", "c", "d", "a"]

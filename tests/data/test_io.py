"""Unit tests for FIMI and expression-matrix IO."""

import io

import numpy as np
import pytest

from repro.data.database import TransactionDatabase
from repro.data.io import (
    format_fimi,
    parse_fimi,
    read_expression_matrix,
    read_fimi,
    write_expression_matrix,
    write_fimi,
)


class TestFimiParsing:
    def test_numeric_tokens_become_ints(self):
        db = parse_fimi("1 2 3\n2 3\n")
        assert db.as_sets() == [(1, 2, 3), (2, 3)]

    def test_non_numeric_tokens_stay_strings(self):
        db = parse_fimi("bread milk\nmilk\n")
        assert db.as_sets() == [("bread", "milk"), ("milk",)]

    def test_blank_lines_are_empty_transactions(self):
        db = parse_fimi("a b\n\nb\n")
        assert db.n_transactions == 3
        assert db.as_sets()[1] == ()

    def test_duplicate_items_in_line_collapse(self):
        db = parse_fimi("a a b\n")
        assert db.as_sets() == [("a", "b")]

    def test_empty_input(self):
        db = parse_fimi("")
        assert db.n_transactions == 0
        assert db.n_items == 0

    def test_item_codes_sorted(self):
        db = parse_fimi("5 3\n9\n")
        assert db.item_labels == [3, 5, 9]


class TestFimiRoundtrip:
    def test_roundtrip_through_string(self):
        db = TransactionDatabase.from_iterable(
            [["a", "b"], [], ["c"]], item_order=["a", "b", "c"]
        )
        again = parse_fimi(format_fimi(db))
        assert again.as_sets() == db.as_sets()

    def test_roundtrip_through_file(self, tmp_path):
        db = parse_fimi("1 2\n3\n")
        path = tmp_path / "data.fimi"
        write_fimi(db, path)
        assert read_fimi(path).as_sets() == db.as_sets()

    def test_write_to_stream(self):
        db = parse_fimi("1 2\n")
        buffer = io.StringIO()
        write_fimi(db, buffer)
        assert buffer.getvalue() == "1 2\n"

    def test_format_empty_database(self):
        db = TransactionDatabase([], 0)
        assert format_fimi(db) == ""


class TestExpressionMatrixIO:
    def test_roundtrip(self, tmp_path):
        values = np.array([[0.1, -0.3], [0.5, 0.0]])
        path = tmp_path / "expr.tsv"
        write_expression_matrix(values, ["g1", "g2"], ["c1", "c2"], path)
        read_values, genes, conditions = read_expression_matrix(path)
        assert genes == ["g1", "g2"]
        assert conditions == ["c1", "c2"]
        np.testing.assert_allclose(read_values, values)

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="does not match"):
            write_expression_matrix(
                np.zeros((2, 2)), ["g1"], ["c1", "c2"], tmp_path / "x.tsv"
            )

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="expected 3 fields"):
            read_expression_matrix(io.StringIO("gene\tc1\tc2\ng1\t0.5\n"))

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            read_expression_matrix(io.StringIO(""))

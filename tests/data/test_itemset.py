"""Unit tests for the bitmask item set kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import itemset

item_sets = st.frozensets(st.integers(min_value=0, max_value=200), max_size=30)


class TestConstruction:
    def test_empty(self):
        assert itemset.EMPTY == 0
        assert itemset.from_indices([]) == 0
        assert itemset.to_indices(0) == []

    def test_singleton(self):
        assert itemset.singleton(0) == 1
        assert itemset.singleton(5) == 32

    def test_singleton_negative_rejected(self):
        with pytest.raises(ValueError):
            itemset.singleton(-1)

    def test_from_indices_duplicates_collapse(self):
        assert itemset.from_indices([1, 1, 1]) == itemset.singleton(1)

    def test_from_indices_negative_rejected(self):
        with pytest.raises(ValueError):
            itemset.from_indices([0, -3])

    @given(item_sets)
    def test_roundtrip(self, items):
        mask = itemset.from_indices(items)
        assert set(itemset.to_indices(mask)) == set(items)

    @given(item_sets)
    def test_to_indices_sorted(self, items):
        mask = itemset.from_indices(items)
        out = itemset.to_indices(mask)
        assert out == sorted(out)


class TestQueries:
    @given(item_sets)
    def test_size(self, items):
        assert itemset.size(itemset.from_indices(items)) == len(items)

    @given(item_sets, st.integers(min_value=0, max_value=200))
    def test_contains(self, items, item):
        mask = itemset.from_indices(items)
        assert itemset.contains(mask, item) == (item in items)

    @given(item_sets, item_sets)
    def test_is_subset_matches_set_semantics(self, a, b):
        assert itemset.is_subset(
            itemset.from_indices(a), itemset.from_indices(b)
        ) == a.issubset(b)

    def test_lowest_highest(self):
        mask = itemset.from_indices([3, 7, 11])
        assert itemset.lowest_item(mask) == 3
        assert itemset.highest_item(mask) == 11

    def test_lowest_highest_empty_raises(self):
        with pytest.raises(ValueError):
            itemset.lowest_item(0)
        with pytest.raises(ValueError):
            itemset.highest_item(0)

    def test_iter_indices_rejects_negative(self):
        with pytest.raises(ValueError):
            list(itemset.iter_indices(-1))


class TestAlgebra:
    @given(st.lists(item_sets, min_size=1, max_size=6))
    def test_intersect_all(self, sets):
        masks = [itemset.from_indices(s) for s in sets]
        expected = set(sets[0])
        for s in sets[1:]:
            expected &= s
        assert itemset.intersect_all(masks) == itemset.from_indices(expected)

    def test_intersect_all_empty_rejected(self):
        with pytest.raises(ValueError):
            itemset.intersect_all([])

    @given(st.lists(item_sets, max_size=6))
    def test_union_all(self, sets):
        masks = [itemset.from_indices(s) for s in sets]
        expected = set().union(*sets) if sets else set()
        assert itemset.union_all(masks) == itemset.from_indices(expected)

    @given(item_sets, st.integers(min_value=0, max_value=200))
    def test_without(self, items, item):
        mask = itemset.from_indices(items)
        assert itemset.without(mask, item) == itemset.from_indices(items - {item})


class TestCanonicalTuple:
    def test_without_labels(self):
        assert itemset.canonical_tuple(itemset.from_indices([2, 0])) == (0, 2)

    def test_with_labels(self):
        labels = ["a", "b", "c"]
        assert itemset.canonical_tuple(itemset.from_indices([2, 0]), labels) == ("a", "c")

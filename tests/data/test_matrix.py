"""Tests for the table-based Carpenter matrix — including the exact Table 1."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.data.database import TransactionDatabase
from repro.data.matrix import build_matrix, example_database, remaining_counts

#: The matrix printed in Table 1 of the paper (rows t1..t8, columns a..e).
TABLE_1 = [
    [4, 5, 5, 0, 0],
    [3, 0, 0, 6, 3],
    [0, 4, 4, 5, 0],
    [2, 3, 3, 4, 0],
    [0, 2, 2, 0, 0],
    [1, 1, 0, 3, 0],
    [0, 0, 0, 2, 2],
    [0, 0, 1, 1, 1],
]

transaction_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=5), max_size=6), max_size=8
)


class TestTable1:
    def test_example_database_matches_paper(self):
        db = example_database()
        assert db.as_sets() == [
            ("a", "b", "c"),
            ("a", "d", "e"),
            ("b", "c", "d"),
            ("a", "b", "c", "d"),
            ("b", "c"),
            ("a", "b", "d"),
            ("d", "e"),
            ("c", "d", "e"),
        ]

    def test_matrix_equals_published_table(self):
        matrix = build_matrix(example_database())
        assert matrix.tolist() == TABLE_1


class TestMatrixProperties:
    @given(transaction_lists)
    def test_zero_iff_absent(self, rows):
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(6)))
        matrix = build_matrix(db)
        for k, row in enumerate(rows):
            for item in range(6):
                assert (matrix[k, item] == 0) == (item not in row)

    @given(transaction_lists)
    def test_entries_count_remaining_occurrences(self, rows):
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(6)))
        matrix = build_matrix(db)
        for k, row in enumerate(rows):
            for item in set(row):
                expected = sum(1 for later in rows[k:] if item in later)
                assert matrix[k, item] == expected

    @given(transaction_lists)
    def test_first_row_entries_equal_item_supports(self, rows):
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(6)))
        matrix = build_matrix(db)
        supports = db.item_supports()
        if rows:
            for item in set(rows[0]):
                assert matrix[0, item] == supports[item]

    def test_empty_database(self):
        db = TransactionDatabase([], 3)
        assert build_matrix(db).shape == (0, 3)


class TestRemainingCounts:
    @given(transaction_lists, st.integers(min_value=0, max_value=8))
    def test_counts_match_direct_enumeration(self, rows, start):
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(6)))
        start = min(start, len(rows))
        counts = remaining_counts(db, start)
        for item in range(6):
            expected = sum(1 for row in rows[start:] if item in row)
            assert counts[item] == expected

    def test_start_zero_equals_item_supports(self):
        db = example_database()
        assert remaining_counts(db, 0) == db.item_supports()

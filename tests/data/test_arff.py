"""Tests for ARFF import/export."""

import io

import pytest

from repro.data.arff import format_arff, parse_arff, read_arff, write_arff
from repro.data.database import TransactionDatabase

DENSE = """\
% a comment
@relation toy

@attribute bread {0, 1}
@attribute milk {0, 1}
@attribute eggs {0, 1}

@data
1,1,0
0,1,1
0,0,0
"""

SPARSE = """\
@relation toy
@attribute bread {0, 1}
@attribute milk {0, 1}
@attribute eggs {0, 1}
@data
{0 1, 1 1}
{1 1, 2 1}
{}
"""


class TestParsing:
    def test_dense_rows(self):
        db = parse_arff(DENSE)
        assert db.as_sets() == [("bread", "milk"), ("milk", "eggs"), ()]

    def test_sparse_rows(self):
        db = parse_arff(SPARSE)
        assert db.as_sets() == [("bread", "milk"), ("milk", "eggs"), ()]

    def test_dense_and_sparse_agree(self):
        assert parse_arff(DENSE).transactions == parse_arff(SPARSE).transactions

    def test_true_false_nominals(self):
        text = (
            "@relation r\n@attribute x {true, false}\n@data\ntrue\nfalse\n"
        )
        db = parse_arff(text)
        assert db.as_sets() == [("x",), ()]

    def test_quoted_attribute_names(self):
        text = "@relation r\n@attribute 'item a' {0,1}\n@data\n1\n"
        db = parse_arff(text)
        assert db.item_labels == ["item a"]

    def test_missing_data_section_rejected(self):
        with pytest.raises(ValueError, match="no @data"):
            parse_arff("@relation r\n@attribute x {0,1}\n")

    def test_non_binary_nominal_rejected(self):
        with pytest.raises(ValueError, match="not binary"):
            parse_arff("@relation r\n@attribute x {a, b, c}\n@data\na\n")

    def test_non_binary_value_rejected(self):
        with pytest.raises(ValueError, match="non-binary value"):
            parse_arff("@relation r\n@attribute x numeric\n@data\n3.7\n")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expected 2 values"):
            parse_arff(
                "@relation r\n@attribute x {0,1}\n@attribute y {0,1}\n@data\n1\n"
            )

    def test_sparse_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_arff("@relation r\n@attribute x {0,1}\n@data\n{3 1}\n")


class TestRoundtrip:
    @pytest.fixture
    def db(self):
        return TransactionDatabase.from_iterable(
            [["a", "b"], ["b"], []], item_order=["a", "b", "c"]
        )

    def test_sparse_roundtrip(self, db):
        assert parse_arff(format_arff(db, sparse=True)).transactions == db.transactions

    def test_dense_roundtrip(self, db):
        assert parse_arff(format_arff(db, sparse=False)).transactions == db.transactions

    def test_file_roundtrip(self, db, tmp_path):
        path = tmp_path / "x.arff"
        write_arff(db, path)
        assert read_arff(path).transactions == db.transactions

    def test_stream_roundtrip(self, db):
        buffer = io.StringIO()
        write_arff(db, buffer)
        buffer.seek(0)
        assert read_arff(buffer).transactions == db.transactions

    def test_relation_name_written(self, db):
        assert "@relation basket" in format_arff(db, relation="basket")

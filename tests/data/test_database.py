"""Unit tests for TransactionDatabase."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import itemset
from repro.data.database import TransactionDatabase

transaction_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=9), max_size=8), max_size=10
)


class TestConstruction:
    def test_from_iterable_assigns_codes_in_first_appearance_order(self):
        db = TransactionDatabase.from_iterable([["b", "a"], ["c", "a"]])
        assert db.item_labels == ["b", "a", "c"]
        assert db.n_items == 3

    def test_from_iterable_with_item_order(self):
        db = TransactionDatabase.from_iterable([["b"], ["a"]], item_order=["a", "b"])
        assert db.item_labels == ["a", "b"]
        assert db.transactions == [2, 1]

    def test_from_iterable_rejects_unknown_item_with_explicit_order(self):
        with pytest.raises(ValueError, match="missing from item_order"):
            TransactionDatabase.from_iterable([["z"]], item_order=["a"])

    def test_from_iterable_rejects_duplicate_order(self):
        with pytest.raises(ValueError, match="duplicate"):
            TransactionDatabase.from_iterable([], item_order=["a", "a"])

    def test_from_masks_infers_item_count(self):
        db = TransactionDatabase.from_masks([0b101, 0b10])
        assert db.n_items == 3

    def test_rejects_mask_beyond_item_base(self):
        with pytest.raises(ValueError, match="beyond the item base"):
            TransactionDatabase([8], n_items=3)

    def test_rejects_negative_mask(self):
        with pytest.raises(TypeError):
            TransactionDatabase([-1], n_items=3)

    def test_rejects_label_count_mismatch(self):
        with pytest.raises(ValueError, match="item_labels"):
            TransactionDatabase([1], n_items=1, item_labels=["a", "b"])

    def test_empty_database(self):
        db = TransactionDatabase([], n_items=0)
        assert db.n_transactions == 0
        assert db.item_supports() == []
        assert db.density() == 0.0

    def test_duplicate_transactions_are_kept(self):
        db = TransactionDatabase.from_iterable([["a"], ["a"]])
        assert db.n_transactions == 2


class TestEncodingDecoding:
    def test_encode_decode_roundtrip(self):
        db = TransactionDatabase.from_iterable([["x", "y", "z"]])
        mask = db.encode(["z", "x"])
        assert db.decode(mask) == ("x", "z")

    def test_code_of_unknown_label_raises(self):
        db = TransactionDatabase.from_iterable([["a"]])
        with pytest.raises(KeyError):
            db.code_of("nope")

    def test_as_sets(self):
        db = TransactionDatabase.from_iterable([["b", "a"], []])
        assert db.as_sets() == [("b", "a"), ()]


class TestDerivedViews:
    @given(transaction_lists)
    def test_vertical_consistency(self, rows):
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(10)))
        vertical = db.vertical()
        for item in range(10):
            expected = {tid for tid, row in enumerate(rows) if item in row}
            assert set(itemset.to_indices(vertical[item])) == expected

    @given(transaction_lists)
    def test_support_matches_manual_count(self, rows):
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(10)))
        for items in ([0], [0, 1], [2, 5, 7]):
            mask = itemset.from_indices(items)
            expected = sum(1 for row in rows if set(items) <= set(row))
            assert db.support(mask) == expected

    def test_cover_of_empty_set_is_everything(self):
        db = TransactionDatabase.from_iterable([["a"], ["b"]])
        assert db.cover(0) == 0b11

    def test_density(self):
        db = TransactionDatabase.from_iterable([["a", "b"], []], item_order=["a", "b"])
        assert db.density() == pytest.approx(0.5)

    def test_transaction_sizes(self):
        db = TransactionDatabase.from_iterable([["a", "b"], ["a"], []])
        assert db.transaction_sizes() == [2, 1, 0]


class TestFiltering:
    def test_without_empty(self):
        db = TransactionDatabase.from_iterable([["a"], [], ["b"]])
        assert db.without_empty().n_transactions == 2

    def test_filter_items_compacts_codes_and_labels(self):
        db = TransactionDatabase.from_iterable([["a", "b", "c"], ["b", "c"]])
        kept = db.filter_items(db.encode(["a", "c"]))
        assert kept.item_labels == ["a", "c"]
        assert kept.as_sets() == [("a", "c"), ("c",)]

    def test_filter_infrequent(self):
        db = TransactionDatabase.from_iterable([["a", "b"], ["a"], ["a", "c"]])
        kept = db.filter_infrequent(2)
        assert kept.item_labels == ["a"]
        assert kept.n_transactions == 3

    def test_select_transactions(self):
        db = TransactionDatabase.from_iterable([["a"], ["b"], ["c"]])
        sub = db.select_transactions([2, 0])
        assert sub.as_sets() == [("c",), ("a",)]

    def test_equality(self):
        a = TransactionDatabase.from_iterable([["a"]])
        b = TransactionDatabase.from_iterable([["a"]])
        assert a == b
        assert a != TransactionDatabase.from_iterable([["b"]])

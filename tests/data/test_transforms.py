"""Unit tests for transpose and expression discretisation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.database import TransactionDatabase
from repro.data.transforms import (
    binarize_expression,
    expression_to_database,
    transpose,
)

transaction_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=6), max_size=6), max_size=8
)


class TestTranspose:
    def test_simple_case(self):
        db = TransactionDatabase.from_iterable(
            [["a", "b"], ["b"]], item_order=["a", "b"]
        )
        transposed = transpose(db)
        # item "a" -> transaction {0}; item "b" -> transaction {0, 1}
        assert transposed.n_transactions == 2
        assert transposed.transactions == [0b01, 0b11]

    @given(transaction_lists)
    def test_double_transpose_restores_masks(self, rows):
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(7)))
        back = transpose(transpose(db))
        assert back.transactions == db.transactions

    @given(transaction_lists)
    def test_membership_is_mirrored(self, rows):
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(7)))
        transposed = transpose(db)
        for tid, row in enumerate(rows):
            for item in set(row):
                assert transposed.transactions[item] >> tid & 1

    def test_empty_database(self):
        db = TransactionDatabase([], 0)
        assert transpose(db).n_transactions == 0


class TestBinarize:
    def test_thresholds(self):
        values = np.array([[0.3, -0.3, 0.1]])
        over, under = binarize_expression(values)
        assert over.tolist() == [[True, False, False]]
        assert under.tolist() == [[False, True, False]]

    def test_boundary_values_are_neutral(self):
        over, under = binarize_expression(np.array([[0.2, -0.2]]))
        assert not over.any()
        assert not under.any()

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ValueError, match="below"):
            binarize_expression(np.zeros((1, 1)), upper=-0.1, lower=0.1)


class TestExpressionToDatabase:
    @pytest.fixture
    def values(self):
        # gene 0: over in c0, under in c1; gene 1: over in c1
        return np.array([[0.5, -0.5], [0.0, 0.4]])

    def test_genes_as_transactions(self, values):
        db = expression_to_database(values, orientation="genes-as-transactions")
        assert db.n_transactions == 2
        assert db.as_sets()[0] == (("c0", "+"), ("c1", "-"))
        assert db.as_sets()[1] == (("c1", "+"),)

    def test_conditions_as_transactions(self, values):
        db = expression_to_database(values, orientation="conditions-as-transactions")
        assert db.n_transactions == 2
        assert db.as_sets()[0] == (("g0", "+"),)
        assert set(db.as_sets()[1]) == {("g0", "-"), ("g1", "+")}

    def test_duality(self, values):
        """The two orientations are transposes up to item identity."""
        genes = expression_to_database(values, orientation="genes-as-transactions")
        conditions = expression_to_database(values, orientation="conditions-as-transactions")
        total_genes = sum(len(t) for t in genes.as_sets())
        total_conditions = sum(len(t) for t in conditions.as_sets())
        assert total_genes == total_conditions

    def test_unknown_orientation_rejected(self, values):
        with pytest.raises(ValueError, match="unknown orientation"):
            expression_to_database(values, orientation="sideways")

    def test_custom_names(self, values):
        db = expression_to_database(
            values,
            gene_names=["tp53", "brca1"],
            orientation="conditions-as-transactions",
        )
        assert ("tp53", "+") in db.as_sets()[0]

    def test_name_length_mismatch_rejected(self, values):
        with pytest.raises(ValueError, match="name lists"):
            expression_to_database(values, gene_names=["only-one"])

"""Tests for the level-wise Apriori reference implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import (
    all_frequent_bruteforce,
    closed_frequent_bruteforce,
    maximal_frequent_bruteforce,
)
from repro.data.database import TransactionDatabase
from repro.enumeration.apriori import mine_apriori

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 6) - 1), min_size=1, max_size=8
).map(lambda masks: TransactionDatabase(masks, 6))


class TestCorrectness:
    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_all_matches_oracle(self, db, smin):
        assert mine_apriori(db, smin) == all_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=25)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_closed_matches_oracle(self, db, smin):
        assert mine_apriori(db, smin, target="closed") == closed_frequent_bruteforce(
            db, smin
        )

    @settings(deadline=None, max_examples=20)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_maximal_matches_oracle(self, db, smin):
        assert mine_apriori(db, smin, target="maximal") == maximal_frequent_bruteforce(
            db, smin
        )


class TestBehaviour:
    def test_textbook_example(self):
        db = db_from_strings(["ab", "ab", "abc", "c"])
        result = mine_apriori(db, 2).as_frozensets()
        assert result == {
            frozenset("a"): 3,
            frozenset("b"): 3,
            frozenset("c"): 2,
            frozenset("ab"): 3,
        }

    def test_empty_database(self):
        assert len(mine_apriori(TransactionDatabase([], 0), 1)) == 0

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            mine_apriori(db_from_strings(["a"]), 1, target="weird")

    def test_levels_terminate(self):
        """A database whose longest frequent set spans all items."""
        db = db_from_strings(["abcd", "abcd"])
        result = mine_apriori(db, 2)
        assert len(result) == 15  # all non-empty subsets of {a,b,c,d}

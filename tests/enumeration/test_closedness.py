"""Tests for the support-bucketed closed-set store."""

from repro.enumeration.closedness import ClosedSetStore
from repro.stats import OperationCounters


def make_store():
    return ClosedSetStore(OperationCounters())


class TestSubsumption:
    def test_empty_store_subsumes_nothing(self):
        assert not make_store().subsumed(0b1, 1)

    def test_superset_with_same_support_subsumes(self):
        store = make_store()
        store.add(0b111, 4)
        assert store.subsumed(0b101, 4)
        assert store.subsumed(0b111, 4)

    def test_different_support_does_not_subsume(self):
        store = make_store()
        store.add(0b111, 4)
        assert not store.subsumed(0b101, 3)
        assert not store.subsumed(0b101, 5)

    def test_non_superset_does_not_subsume(self):
        store = make_store()
        store.add(0b011, 4)
        assert not store.subsumed(0b101, 4)


class TestStorage:
    def test_len_counts_all_buckets(self):
        store = make_store()
        store.add(0b1, 1)
        store.add(0b10, 1)
        store.add(0b100, 2)
        assert len(store) == 3

    def test_pairs_returns_everything(self):
        store = make_store()
        store.add(0b1, 1)
        store.add(0b10, 2)
        assert sorted(store.pairs()) == [(0b1, 1), (0b10, 2)]

    def test_containment_checks_counted(self):
        counters = OperationCounters()
        store = ClosedSetStore(counters)
        store.add(0b1, 1)
        store.subsumed(0b1, 1)
        assert counters.containment_checks >= 1

    def test_repository_peak_tracked(self):
        counters = OperationCounters()
        store = ClosedSetStore(counters)
        store.add(0b1, 1)
        store.add(0b10, 1)
        assert counters.repository_peak == 2

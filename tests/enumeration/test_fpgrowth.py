"""Tests for FP-growth / FP-close and the FP-tree structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import (
    all_frequent_bruteforce,
    closed_frequent_bruteforce,
    maximal_frequent_bruteforce,
)
from repro.data.database import TransactionDatabase
from repro.enumeration.fpgrowth import FPTree, mine_fpgrowth
from repro.stats import OperationCounters

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestFPTree:
    def test_shared_prefix_compresses(self):
        counters = OperationCounters()
        # Two identical transactions: one path, counts of 2.
        tree = FPTree.build([(0b11, 1), (0b11, 1)], smin=1, counters=counters)
        assert counters.nodes_created == 2
        assert tree.counts == {0: 2, 1: 2}

    def test_infrequent_items_dropped_at_build(self):
        counters = OperationCounters()
        tree = FPTree.build([(0b11, 1), (0b01, 1)], smin=2, counters=counters)
        assert tree.counts == {0: 2}

    def test_pattern_base_collects_weighted_paths(self):
        counters = OperationCounters()
        tree = FPTree.build([(0b111, 2), (0b101, 1)], smin=1, counters=counters)
        base = dict(tree.pattern_base(0))
        # item 0's prefixes: {2,1} with weight 2 and {2} with weight 1
        assert base == {0b110: 2, 0b100: 1}

    def test_pattern_base_of_root_level_item_is_empty(self):
        counters = OperationCounters()
        tree = FPTree.build([(0b100, 1)], smin=1, counters=counters)
        assert tree.pattern_base(2) == []


class TestTargets:
    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_all_matches_oracle(self, db, smin):
        assert mine_fpgrowth(db, smin, target="all") == all_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_closed_matches_oracle(self, db, smin):
        assert mine_fpgrowth(db, smin, target="closed") == closed_frequent_bruteforce(
            db, smin
        )

    @settings(deadline=None, max_examples=25)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_maximal_matches_oracle(self, db, smin):
        assert mine_fpgrowth(db, smin, target="maximal") == maximal_frequent_bruteforce(
            db, smin
        )

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            mine_fpgrowth(db_from_strings(["ab"]), 1, target="weird")


class TestEdgeCases:
    def test_empty_database(self):
        assert len(mine_fpgrowth(TransactionDatabase([], 0), 1)) == 0

    def test_single_item(self):
        db = db_from_strings(["a", "a"])
        assert mine_fpgrowth(db, 2).as_frozensets() == {frozenset("a"): 2}

    def test_perfect_extensions_absorbed_in_closed_mode(self):
        db = db_from_strings(["abc", "abc", "ab"])
        result = mine_fpgrowth(db, 2, target="closed").as_frozensets()
        assert result == {frozenset("abc"): 2, frozenset("ab"): 3}

    def test_algorithm_labels(self):
        db = db_from_strings(["ab"])
        assert mine_fpgrowth(db, 1, target="all").algorithm == "fpgrowth"
        assert mine_fpgrowth(db, 1, target="closed").algorithm == "fpclose"
        assert mine_fpgrowth(db, 1, target="maximal").algorithm == "fpmax"

"""Tests for Eclat (all / closed / maximal targets)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import (
    all_frequent_bruteforce,
    closed_frequent_bruteforce,
    maximal_frequent_bruteforce,
)
from repro.data.database import TransactionDatabase
from repro.enumeration.eclat import mine_eclat

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestTargets:
    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_all_matches_oracle(self, db, smin):
        assert mine_eclat(db, smin, target="all") == all_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_closed_matches_oracle(self, db, smin):
        assert mine_eclat(db, smin, target="closed") == closed_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=30)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_maximal_matches_oracle(self, db, smin):
        assert mine_eclat(db, smin, target="maximal") == maximal_frequent_bruteforce(db, smin)

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            mine_eclat(db_from_strings(["ab"]), 1, target="weird")


class TestClosedSubsumption:
    def test_perfect_extension_absorbed(self):
        """b is a perfect extension of a: {a} alone must not be reported."""
        db = db_from_strings(["ab", "ab", "b"])
        result = mine_eclat(db, 1, target="closed").as_frozensets()
        assert result == {frozenset("ab"): 2, frozenset("b"): 3}

    def test_earlier_branch_subsumes(self):
        """The closure of a later-branch prefix reaches into an earlier
        branch; the subsumption check must drop it."""
        db = db_from_strings(["ab", "ab", "ac"])
        result = mine_eclat(db, 1, target="closed").as_frozensets()
        # {b} is not closed (always occurs with a).
        assert frozenset("b") not in result
        assert result[frozenset("ab")] == 2

    def test_full_support_items_collapse_to_root_closure(self):
        db = db_from_strings(["abx", "aby", "abz"])
        result = mine_eclat(db, 3, target="closed").as_frozensets()
        assert result == {frozenset("ab"): 3}


class TestEdgeCases:
    def test_empty_database(self):
        assert len(mine_eclat(TransactionDatabase([], 0), 1)) == 0

    def test_all_infrequent(self):
        db = db_from_strings(["a", "b"])
        assert len(mine_eclat(db, 2)) == 0

    def test_algorithm_label(self):
        db = db_from_strings(["ab"])
        assert mine_eclat(db, 1, target="closed").algorithm == "eclat-closed"
        assert mine_eclat(db, 1, target="maximal").algorithm == "eclat-maximal"

"""Tests for LCM (prefix-preserving closure extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import closed_frequent_bruteforce
from repro.data.database import TransactionDatabase
from repro.enumeration.lcm import mine_lcm
from repro.stats import OperationCounters

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestCorrectness:
    @settings(deadline=None, max_examples=60)
    @given(small_databases, st.integers(min_value=1, max_value=6))
    def test_against_oracle(self, db, smin):
        assert mine_lcm(db, smin) == closed_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=25)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_item_order_is_transparent(self, db, smin):
        expected = dict(mine_lcm(db, smin))
        for order in ("frequency-descending", "identity"):
            assert dict(mine_lcm(db, smin, item_order=order)) == expected

    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_no_duplicates_generated(self, db, smin):
        """Each closed set has a unique ppc parent — LCM's defining property
        means the reports counter equals the result size."""
        counters = OperationCounters()
        result = mine_lcm(db, smin, counters=counters)
        assert counters.reports == len(result)


class TestEdgeCases:
    def test_empty_database(self):
        assert len(mine_lcm(TransactionDatabase([], 0), 1)) == 0

    def test_smin_above_n(self):
        db = db_from_strings(["ab"])
        assert len(mine_lcm(db, 2)) == 0

    def test_root_closure_reported(self):
        """Items common to all transactions form the root closed set."""
        db = db_from_strings(["abx", "aby"])
        result = mine_lcm(db, 2).as_frozensets()
        assert result == {frozenset("ab"): 2}

    def test_figure3_example(self, figure3_db):
        result = mine_lcm(figure3_db, 1).as_frozensets()
        assert len(result) == 6
        assert result[frozenset("ca")] == 2

"""Tests for SaM (split and merge)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import (
    all_frequent_bruteforce,
    closed_frequent_bruteforce,
    maximal_frequent_bruteforce,
)
from repro.data.database import TransactionDatabase
from repro.enumeration.sam import mine_sam
from repro.stats import OperationCounters

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestTargets:
    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_all_matches_oracle(self, db, smin):
        assert mine_sam(db, smin, target="all") == all_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_closed_matches_oracle(self, db, smin):
        assert mine_sam(db, smin, target="closed") == closed_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=25)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_maximal_matches_oracle(self, db, smin):
        assert mine_sam(db, smin, target="maximal") == maximal_frequent_bruteforce(db, smin)

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            mine_sam(db_from_strings(["ab"]), 1, target="weird")


class TestSplitMergeMechanics:
    def test_duplicate_transactions_merge_into_weights(self):
        """Identical transactions collapse: the working list shrinks."""
        db = db_from_strings(["abc"] * 5 + ["ab"] * 3)
        counters = OperationCounters()
        result = mine_sam(db, 1, target="all", counters=counters)
        assert result.as_frozensets()[frozenset("abc")] == 5
        assert result.as_frozensets()[frozenset("ab")] == 8

    def test_empty_database(self):
        assert len(mine_sam(TransactionDatabase([], 0), 1)) == 0

    def test_single_item_database(self):
        db = db_from_strings(["a", "a", "a"])
        assert mine_sam(db, 2).as_frozensets() == {frozenset("a"): 3}

    def test_algorithm_labels(self):
        db = db_from_strings(["ab"])
        assert mine_sam(db, 1, target="all").algorithm == "sam"
        assert mine_sam(db, 1, target="closed").algorithm == "sam-closed"
        assert mine_sam(db, 1, target="maximal").algorithm == "sam-maximal"

"""Smoke checks of the example scripts.

The quickstart (cheap) runs for real; the heavier examples are
import-checked so a broken API surface fails fast without paying their
full runtime on every test run.  All examples are exercised end-to-end
by the documentation workflow (see docs/reproducing.md).
"""

import importlib.util
import io
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "gene_expression_analysis",
    "algorithm_comparison",
    "click_stream",
    "incremental_stream",
    "concept_lattice",
]


class TestExamples:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_loads_and_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)
        assert module.__doc__

    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "closed frequent item sets (smin=3): 10" in out
        assert "agree with ista" in out

    def test_concept_lattice_runs(self, capsys):
        load_example("concept_lattice").main()
        out = capsys.readouterr().out
        assert "maximal frequent sets" in out
        assert "non-redundant rule basis" in out

    def test_incremental_stream_runs(self, capsys):
        load_example("incremental_stream").main()
        out = capsys.readouterr().out
        assert "point queries" in out

"""The snapshot/query CLI workflow and its exit-code discipline."""

from __future__ import annotations

import pytest

from repro.cli import EXIT_INTERRUPTED, EXIT_USER_ERROR, main


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.fimi"
    path.write_text("1 2 3\n2 3\n1 3\n2 3\n")
    return str(path)


@pytest.fixture
def snap_path(tmp_path, clean_file):
    path = str(tmp_path / "repo.snap")
    assert main(["snapshot", clean_file, "-o", path]) == 0
    return path


class TestSnapshotCommand:
    def test_build_writes_file_and_summary(self, tmp_path, clean_file, capsys):
        out = str(tmp_path / "repo.snap")
        assert main(["snapshot", clean_file, "-o", out]) == 0
        err = capsys.readouterr().err
        assert "closed sets" in err and "4 transactions" in err
        assert (tmp_path / "repo.snap").stat().st_size > 0

    def test_query_matches_mine(self, tmp_path, clean_file, snap_path, capsys):
        mine_out = str(tmp_path / "mine.txt")
        query_out = str(tmp_path / "query.txt")
        assert main(["mine", clean_file, "-s", "2", "-o", mine_out]) == 0
        assert main(["query", snap_path, "-s", "2", "-o", query_out]) == 0
        with open(mine_out) as a, open(query_out) as b:
            assert sorted(a.read().splitlines()) == sorted(b.read().splitlines())

    def test_warm_update_equals_full_build(self, tmp_path, capsys):
        base = tmp_path / "base.fimi"
        base.write_text("1 2\n2 3\n")
        delta = tmp_path / "delta.fimi"
        delta.write_text("1 2 3\n1 3\n")
        full = tmp_path / "full.fimi"
        full.write_text(base.read_text() + delta.read_text())
        base_snap = str(tmp_path / "base.snap")
        warm_snap = str(tmp_path / "warm.snap")
        full_snap = str(tmp_path / "full.snap")
        assert main(["snapshot", str(base), "-o", base_snap]) == 0
        assert (
            main(["snapshot", str(delta), "-o", warm_snap, "--from", base_snap])
            == 0
        )
        assert main(["snapshot", str(full), "-o", full_snap]) == 0
        out_a = str(tmp_path / "a.txt")
        out_b = str(tmp_path / "b.txt")
        assert main(["query", warm_snap, "-o", out_a]) == 0
        assert main(["query", full_snap, "-o", out_b]) == 0
        with open(out_a) as a, open(out_b) as b:
            assert sorted(a.read().splitlines()) == sorted(b.read().splitlines())

    def test_corrupt_input_exits_2(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.fimi"
        corrupt.write_bytes(b"1 2\n2 \x00 3\n")
        code = main(["snapshot", str(corrupt), "-o", str(tmp_path / "x.snap")])
        assert code == EXIT_USER_ERROR

    def test_bad_workers_exits_2(self, tmp_path, clean_file, capsys):
        out = str(tmp_path / "x.snap")
        assert main(["snapshot", clean_file, "-o", out, "--workers", "0"]) == 2
        assert (
            main(
                ["snapshot", clean_file, "-o", out, "--workers", "2",
                 "--from", out]
            )
            == EXIT_USER_ERROR
        )

    def test_timeout_trips_exit_3(self, tmp_path, capsys):
        import random

        rng = random.Random(7)
        dense = tmp_path / "dense.fimi"
        dense.write_text(
            "\n".join(
                " ".join(str(j) for j in range(72) if rng.random() < 0.6)
                for _ in range(64)
            )
            + "\n"
        )
        code = main(
            ["snapshot", str(dense), "-o", str(tmp_path / "x.snap"),
             "--timeout", "0.2"]
        )
        assert code == EXIT_INTERRUPTED
        assert not (tmp_path / "x.snap").exists()  # no partial file


class TestQueryCommand:
    def test_top_k_ordered(self, snap_path, capsys):
        assert main(["query", snap_path, "--top", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        supports = [int(line.rsplit("(", 1)[1].rstrip(")")) for line in lines]
        assert supports == sorted(supports, reverse=True)

    def test_support_prints_number(self, snap_path, capsys):
        assert main(["query", snap_path, "--support", "2,3"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_supersets_filter(self, snap_path, capsys):
        assert main(["query", snap_path, "--supersets", "1"]) == 0
        for line in capsys.readouterr().out.splitlines():
            assert "1" in line.rsplit("(", 1)[0].split()

    def test_missing_snapshot_exits_2(self, capsys):
        assert main(["query", "/no/such.snap"]) == EXIT_USER_ERROR

    def test_not_a_snapshot_exits_2(self, clean_file, capsys):
        assert main(["query", clean_file]) == EXIT_USER_ERROR
        assert "magic" in capsys.readouterr().err

    def test_truncated_snapshot_exits_2(self, tmp_path, snap_path, capsys):
        data = open(snap_path, "rb").read()
        bad = tmp_path / "bad.snap"
        bad.write_bytes(data[: len(data) // 2])
        assert main(["query", str(bad)]) == EXIT_USER_ERROR

    def test_conflicting_modes_exit_2(self, snap_path, capsys):
        code = main(["query", snap_path, "--top", "1", "--support", "1"])
        assert code == EXIT_USER_ERROR

    def test_bad_smin_exits_2(self, snap_path, capsys):
        assert main(["query", snap_path, "-s", "0"]) == EXIT_USER_ERROR


class TestWarmFromLabelConflict:
    def test_int_snapshot_vs_string_delta_refused(self, tmp_path, capsys):
        base = tmp_path / "base.fimi"
        base.write_text("1 2 3\n2 3\n")  # all-numeric: int labels
        delta = tmp_path / "delta.fimi"
        delta.write_text("1 2\n3 4 x\n")  # mixed: string labels
        base_snap = str(tmp_path / "base.snap")
        assert main(["snapshot", str(base), "-o", base_snap]) == 0
        code = main(
            ["snapshot", str(delta), "-o", str(tmp_path / "out.snap"),
             "--from", base_snap]
        )
        assert code == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert "--from refused" in err
        assert "int" in err and "str" in err
        assert not (tmp_path / "out.snap").exists()

    def test_disjoint_universes_still_allowed(self, tmp_path):
        base = tmp_path / "base.fimi"
        base.write_text("a b\nb c\n")
        delta = tmp_path / "delta.fimi"
        delta.write_text("x y\ny z\n")  # genuinely new items: fine
        base_snap = str(tmp_path / "base.snap")
        out_snap = str(tmp_path / "out.snap")
        assert main(["snapshot", str(base), "-o", base_snap]) == 0
        assert main(
            ["snapshot", str(delta), "-o", out_snap, "--from", base_snap]
        ) == 0

    def test_matching_universes_still_allowed(self, tmp_path):
        base = tmp_path / "base.fimi"
        base.write_text("1 2 3\n2 3\n")
        delta = tmp_path / "delta.fimi"
        delta.write_text("1 3\n2 3\n")  # also all-numeric: same coercion
        base_snap = str(tmp_path / "base.snap")
        assert main(["snapshot", str(base), "-o", base_snap]) == 0
        assert main(
            ["snapshot", str(delta), "-o", str(tmp_path / "out.snap"),
             "--from", base_snap]
        ) == 0


class TestIngestRecoverCommands:
    def _query_lines(self, snap, tmp_path, smin="1"):
        out = tmp_path / "q.txt"
        assert main(["query", snap, "-s", smin, "-o", str(out)]) == 0
        return sorted(out.read_text().splitlines())

    def test_ingest_then_recover_matches_cold_mine(self, tmp_path, capsys):
        feed = tmp_path / "feed.fimi"
        feed.write_text("a b c\nb c\na c\nb c\na b\nc\n")
        store = str(tmp_path / "store")
        assert main(
            ["ingest", store, str(feed), "--batch-records", "2",
             "--compact-segments", "1", "--segment-max-bytes", "128"]
        ) == 0
        err = capsys.readouterr().err
        assert "ingested 6 transaction(s)" in err

        recovered = str(tmp_path / "recovered.snap")
        assert main(["recover", store, "-o", recovered]) == 0
        out = capsys.readouterr().out
        assert "transactions 6" in out

        cold = str(tmp_path / "cold.snap")
        assert main(["snapshot", str(feed), "-o", cold]) == 0
        assert self._query_lines(recovered, tmp_path) == self._query_lines(
            cold, tmp_path
        )

    def test_ingest_resumes_a_store(self, tmp_path, capsys):
        first = tmp_path / "first.fimi"
        first.write_text("a b\nb c\n")
        second = tmp_path / "second.fimi"
        second.write_text("a c\na b c\n")
        both = tmp_path / "both.fimi"
        both.write_text(first.read_text() + second.read_text())
        store = str(tmp_path / "store")
        assert main(["ingest", store, str(first)]) == 0
        assert main(["ingest", store, str(second)]) == 0
        recovered = str(tmp_path / "recovered.snap")
        assert main(["recover", store, "-o", recovered]) == 0
        cold = str(tmp_path / "cold.snap")
        assert main(["snapshot", str(both), "-o", cold]) == 0
        assert self._query_lines(recovered, tmp_path) == self._query_lines(
            cold, tmp_path
        )

    def test_recover_reports_torn_tail_and_exits_zero(self, tmp_path, capsys):
        import os

        feed = tmp_path / "feed.fimi"
        feed.write_text("a b\nb c\na c\n")
        store = tmp_path / "store"
        assert main(
            ["ingest", str(store), str(feed), "--batch-records", "100"]
        ) == 0
        capsys.readouterr()
        # Tear the log tail the way a mid-write kill would.
        [segment] = [
            name
            for name in os.listdir(store / "wal")
            if name.endswith(".wal")
        ]
        with open(store / "wal" / segment, "ab") as handle:
            handle.write(b"\x99" * 9)
        assert main(["recover", str(store)]) == 0
        out = capsys.readouterr().out
        assert "truncated 9 byte(s)" in out
        assert "transactions 3" in out

    def test_ingest_missing_file_exits_two(self, tmp_path, capsys):
        assert main(
            ["ingest", str(tmp_path / "store"), str(tmp_path / "nope.fimi")]
        ) == EXIT_USER_ERROR

    def test_ingest_fold_budget_trip_exits_three(self, tmp_path, capsys):
        feed = tmp_path / "feed.fimi"
        feed.write_text("".join("a b c d e f\n" for _ in range(30)))
        store = str(tmp_path / "store")
        code = main(
            ["ingest", store, str(feed), "--batch-records", "4",
             "--timeout", "0.0"]
        )
        assert code == EXIT_INTERRUPTED
        capsys.readouterr()
        # Nothing acked was lost: recovery replays the logged batch.
        assert main(["recover", store]) == 0
        out = capsys.readouterr().out
        assert "transactions" in out

"""Repository merges and the parallel snapshot build."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalMiner
from repro.data.database import TransactionDatabase
from repro.serving import (
    build_miner_parallel,
    dumps_snapshot,
    loads_snapshot,
    merge_miners,
)


def _family(miner, smin=1):
    return {
        frozenset(labels): supp
        for labels, supp in miner.closed_sets(smin).items()
    }


rows_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=5),
    min_size=1,
    max_size=10,
)


class TestMergeMiners:
    @settings(deadline=None, max_examples=30)
    @given(left=rows_strategy, right=rows_strategy)
    def test_merge_equals_combined_stream(self, left, right):
        a = IncrementalMiner()
        a.extend(left)
        b = IncrementalMiner()
        b.extend(right)
        merged = merge_miners(a, b)
        reference = IncrementalMiner()
        reference.extend(left)
        reference.extend(right)
        assert _family(merged) == _family(reference)
        assert merged.n_transactions == reference.n_transactions

    def test_disjoint_label_spaces(self):
        a = IncrementalMiner()
        a.extend([["a", "b"], ["a"]])
        b = IncrementalMiner()
        b.extend([["x", "y"], ["y"]])
        merged = merge_miners(a, b)
        reference = IncrementalMiner()
        reference.extend([["a", "b"], ["a"], ["x", "y"], ["y"]])
        assert _family(merged) == _family(reference)

    def test_overlapping_label_spaces_with_different_codes(self):
        # "c" arrives first on one side and last on the other, so the
        # two miners assign it different internal codes.
        a = IncrementalMiner()
        a.extend([["c", "a"], ["a", "b"]])
        b = IncrementalMiner()
        b.extend([["b", "a"], ["a", "c"], ["d"]])
        merged = merge_miners(a, b)
        reference = IncrementalMiner()
        reference.extend([["c", "a"], ["a", "b"], ["b", "a"], ["a", "c"], ["d"]])
        assert _family(merged) == _family(reference)
        assert merged.support_of(["a", "c"]) == reference.support_of(["a", "c"])

    def test_merge_with_empty_side(self):
        a = IncrementalMiner()
        a.extend([["a", "b"], ["b"]])
        empty = IncrementalMiner()
        assert _family(merge_miners(a, empty)) == _family(a)
        assert _family(merge_miners(empty, a)) == _family(a)
        assert merge_miners(empty, a).n_transactions == a.n_transactions

    def test_inputs_left_untouched(self):
        a = IncrementalMiner()
        a.extend([["a", "b"], ["a"]])
        b = IncrementalMiner()
        b.extend([["b", "c"]])
        family_a, family_b = _family(a), _family(b)
        gen_a, gen_b = a.generation, b.generation
        merge_miners(a, b)
        assert _family(a) == family_a and a.generation == gen_a
        assert _family(b) == family_b and b.generation == gen_b

    def test_merged_miner_keeps_growing(self):
        a = IncrementalMiner()
        a.extend([["a", "b"], ["b", "c"]])
        b = IncrementalMiner()
        b.extend([["a", "c"]])
        merged = merge_miners(a, b)
        merged.add(["a", "b", "c"])
        reference = IncrementalMiner()
        reference.extend([["a", "b"], ["b", "c"], ["a", "c"], ["a", "b", "c"]])
        assert _family(merged) == _family(reference)

    def test_merged_miner_snapshots(self):
        a = IncrementalMiner()
        a.extend([["a", "b"], ["b"]])
        b = IncrementalMiner()
        b.extend([["b", "c"], ["c"]])
        merged = merge_miners(a, b)
        restored = loads_snapshot(dumps_snapshot(merged))
        assert _family(restored) == _family(merged)


class TestParallelBuild:
    def _random_db(self, seed, n_rows=60, n_items=8):
        rng = random.Random(seed)
        masks = [
            sum(1 << i for i in range(n_items) if rng.random() < 0.4)
            for _ in range(n_rows)
        ]
        return TransactionDatabase(masks, n_items, [f"i{k}" for k in range(n_items)])

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_serial_build(self, n_workers):
        db = self._random_db(1)
        serial = IncrementalMiner.from_database(db)
        parallel = build_miner_parallel(db, n_workers=n_workers)
        for smin in (1, 2, 5):
            assert _family(parallel, smin) == _family(serial, smin)
        assert parallel.n_transactions == serial.n_transactions

    def test_result_is_servable(self, tmp_path):
        from repro.serving import load_snapshot, save_snapshot

        db = self._random_db(2)
        miner = build_miner_parallel(db, n_workers=3)
        path = tmp_path / "parallel.snap"
        save_snapshot(miner, str(path))
        restored = load_snapshot(str(path))
        assert _family(restored) == _family(miner)
        restored.extend([["i0", "i1"]])
        assert restored.n_transactions == db.n_transactions + 1

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            build_miner_parallel(self._random_db(3), n_workers=0)

    def test_tiny_database_runs_inline(self):
        db = self._random_db(4, n_rows=2)
        miner = build_miner_parallel(db, n_workers=8)
        assert _family(miner) == _family(IncrementalMiner.from_database(db))

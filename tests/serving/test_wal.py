"""The write-ahead log: framing, torn-tail repair, retries, pruning."""

from __future__ import annotations

import errno
import os
import random

import pytest

from repro.obs import Probe
from repro.runtime import FaultPlan, InjectedCrash
from repro.serving.wal import (
    FSYNC_POLICIES,
    TRANSIENT_ERRNOS,
    WalError,
    WriteAheadLog,
    repair_wal,
    retry_io,
    scan_wal,
)

ROWS = [["a", "b"], ["b", "c", "d"], ["a"], [1, 2, 3], ["x", 5, True]]


def _fill(directory, rows=ROWS, **kwargs):
    with WriteAheadLog(directory, **kwargs) as wal:
        for row in rows:
            wal.append(row)
    return directory


class TestAppendAndScan:
    def test_round_trip_preserves_labels_and_sequence(self, tmp_path):
        _fill(tmp_path / "wal")
        scan = scan_wal(tmp_path / "wal")
        assert scan.clean
        assert [labels for _, labels in scan.records] == ROWS
        assert [seq for seq, _ in scan.records] == list(range(len(ROWS)))
        assert scan.next_seq == len(ROWS)

    def test_append_acks_survive_reopen(self, tmp_path):
        d = tmp_path / "wal"
        _fill(d)
        with WriteAheadLog(d) as wal:
            assert wal.next_seq == len(ROWS)
            wal.append(["late"])
        scan = scan_wal(d)
        assert scan.records[-1] == (len(ROWS), ["late"])

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_every_fsync_policy_accepted(self, tmp_path, policy):
        _fill(tmp_path / policy, fsync=policy)
        assert scan_wal(tmp_path / policy).clean

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync"):
            WriteAheadLog(tmp_path / "wal", fsync="sometimes")

    def test_unencodable_label_rejected_before_write(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            with pytest.raises(WalError, match="labels"):
                wal.append([object()])
        assert scan_wal(tmp_path / "wal").records == []

    def test_segments_roll_at_size_threshold(self, tmp_path):
        d = tmp_path / "wal"
        _fill(d, rows=[["item", i] for i in range(50)], segment_max_bytes=256)
        scan = scan_wal(d)
        assert scan.clean
        assert len(scan.segments) > 1
        assert [labels for _, labels in scan.records] == [
            ["item", i] for i in range(50)
        ]

    def test_roll_on_empty_segment_is_noop(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.roll()
            wal.roll()
            assert wal.segment_count == 1


class TestTornTails:
    """Satellite: truncated record, flipped CRC byte, garbage past the
    last valid frame — recovery truncates and reports, never raises
    unstructured, never replays a partial record."""

    def _segment_paths(self, directory):
        return sorted(
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.endswith(".wal")
        )

    def test_truncated_final_record(self, tmp_path):
        d = _fill(tmp_path / "wal")
        path = self._segment_paths(d)[-1]
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(size - 3)
        scan = scan_wal(d)
        assert not scan.clean
        assert scan.torn_segment == path
        assert [labels for _, labels in scan.records] == ROWS[:-1]
        assert scan.truncated_bytes > 0

    def test_flipped_crc_byte(self, tmp_path):
        d = _fill(tmp_path / "wal")
        path = self._segment_paths(d)[-1]
        with open(path, "rb+") as handle:
            data = bytearray(handle.read())
            data[-1] ^= 0xFF  # inside the last frame's payload
            handle.seek(0)
            handle.write(data)
        scan = scan_wal(d)
        assert not scan.clean
        assert "checksum" in scan.torn_reason
        assert [labels for _, labels in scan.records] == ROWS[:-1]

    def test_garbage_past_last_valid_frame(self, tmp_path):
        d = _fill(tmp_path / "wal")
        path = self._segment_paths(d)[-1]
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 7)
        scan = scan_wal(d)
        assert not scan.clean
        assert [labels for _, labels in scan.records] == ROWS
        assert scan.truncated_bytes == 28

    def test_repair_truncates_and_log_accepts_appends_again(self, tmp_path):
        d = _fill(tmp_path / "wal")
        path = self._segment_paths(d)[-1]
        with open(path, "ab") as handle:
            handle.write(b"garbage")
        scan = scan_wal(d)
        # A damaged log refuses to open until repaired.
        with pytest.raises(WalError, match="repair"):
            WriteAheadLog(d)
        removed = repair_wal(scan)
        assert removed == len(b"garbage")
        assert scan_wal(d).clean
        with WriteAheadLog(d) as wal:
            seq = wal.append(["after", "repair"])
        assert seq == len(ROWS)
        assert scan_wal(d).records[-1] == (len(ROWS), ["after", "repair"])

    def test_sequence_gap_between_segments_drops_tail(self, tmp_path):
        d = tmp_path / "wal"
        _fill(d, rows=[["item", i] for i in range(50)], segment_max_bytes=256)
        paths = self._segment_paths(d)
        assert len(paths) > 2
        os.unlink(paths[1])  # open a gap: later segments are unreachable
        scan = scan_wal(d)
        assert not scan.clean
        assert "gap" in scan.torn_reason
        # The scan stops at the segment past the gap; everything after
        # it is unreachable.
        assert scan.torn_segment == paths[2]
        assert set(scan.dropped_segments) == set(paths[3:])
        repair_wal(scan)
        assert scan_wal(d).clean

    def test_torn_injection_leaves_replayable_prefix(self, tmp_path):
        plan = FaultPlan(crash_at="wal.append.torn", crash_on_hit=3)
        wal = WriteAheadLog(tmp_path / "wal", fault_plan=plan)
        with pytest.raises(InjectedCrash):
            for row in ROWS:
                wal.append(row)
        scan = scan_wal(tmp_path / "wal")
        assert not scan.clean  # a literal half-frame is on disk
        assert [labels for _, labels in scan.records] == ROWS[:2]
        repair_wal(scan)
        assert scan_wal(tmp_path / "wal").clean


class TestPrune:
    def test_prune_only_covered_segments(self, tmp_path):
        d = tmp_path / "wal"
        wal = WriteAheadLog(d, segment_max_bytes=256)
        for i in range(50):
            wal.append(["item", i])
        before = wal.segment_count
        assert before > 2
        wal.prune_through(10)
        survivors = scan_wal(d)
        assert survivors.clean
        # Every record past the prune point is still replayable.
        kept = [seq for seq, _ in survivors.records]
        assert kept[-1] == 49
        assert all(seq <= 10 or seq in kept for seq in range(50))
        wal.close()

    def test_live_segment_never_pruned(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for i in range(5):
            wal.append(["item", i])
        wal.prune_through(10_000)
        assert wal.segment_count == 1
        assert len(scan_wal(tmp_path / "wal").records) == 5
        wal.close()

    def test_snapshot_ahead_of_log_restarts_cleanly(self, tmp_path):
        d = _fill(tmp_path / "wal")
        # A snapshot covering seq 100 opens the log past every record:
        # the stale segments are fully covered and must go, or the
        # sequence space would have a gap below the new base.
        with WriteAheadLog(d, start_seq=100) as wal:
            assert wal.next_seq == 100
            wal.append(["fresh"])
        scan = scan_wal(d)
        assert scan.clean
        assert scan.records == [(100, ["fresh"])]


class TestRetryIO:
    def test_transient_errors_retried_and_counted(self):
        probe = Probe()
        calls = {"n": 0}
        sleeps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(errno.EAGAIN, "try again")
            return "done"

        result = retry_io(
            flaky,
            probe=probe,
            sleep=sleeps.append,
            rng=random.Random(0),
        )
        assert result == "done"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0] > 0  # exponential, jittered
        assert probe.metrics.snapshot()["counters"]["wal.retries"] == 2

    def test_non_transient_fails_fast(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise OSError(errno.ENOSPC, "disk full")

        with pytest.raises(OSError) as info:
            retry_io(broken, sleep=lambda _: None)
        assert info.value.errno == errno.ENOSPC
        assert calls["n"] == 1  # no retry for a real fault

    def test_transient_exhaustion_raises_last_error(self):
        def always():
            raise OSError(errno.EINTR, "interrupted")

        with pytest.raises(OSError) as info:
            retry_io(always, attempts=3, sleep=lambda _: None)
        assert info.value.errno == errno.EINTR

    def test_transient_errno_set_is_conservative(self):
        assert errno.ENOSPC not in TRANSIENT_ERRNOS
        assert errno.EIO not in TRANSIENT_ERRNOS

"""Store health: the read-only report, including over crashed stores.

The acceptance property of the flight recorder: kill the ingest
pipeline at an arbitrary crash point and ``repro-mine top STORE`` must
still render a coherent :class:`HealthReport` from the on-disk state
alone — no writer runs, nothing is repaired, torn tails are reported
rather than raised.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random

import pytest

from repro.obs import Probe
from repro.obs.recorder import scan_flight
from repro.runtime import FaultPlan, InjectedCrash, MiningTimeout
from repro.serving import (
    CRASH_POINTS,
    HealthReport,
    StreamingMiner,
    compute_health,
)
from repro.cli import main

ROWS = [
    ["a", "b", "c"],
    ["a", "b"],
    ["a", "b", "d"],
    ["b", "c"],
    ["a", "b", "c", "d"],
    ["b", "d"],
    ["a", "c"],
    ["c", "d"],
    ["a", "b", "c"],
    ["b", "c", "d"],
    ["a", "d"],
    ["a", "b", "c", "d"],
]

#: A longer stream for the crash matrix: every named point — including
#: the second compaction's — must actually be reached.
_rng = random.Random(11)
LONG_ROWS = [
    [label for label in "abcdefg" if _rng.random() < 0.45] or ["a"]
    for _ in range(40)
]


def _store_state(directory):
    """(path, size, mtime) of every file under the store, for a
    nothing-changed assertion."""
    state = []
    for root, _, names in os.walk(directory):
        for name in names:
            path = os.path.join(root, name)
            stat = os.stat(path)
            state.append((path, stat.st_size, stat.st_mtime_ns))
    return sorted(state)


def _run_store(directory, rows=ROWS, **kwargs):
    kwargs.setdefault("batch_records", 3)
    kwargs.setdefault("probe", Probe())
    kwargs.setdefault("flight_interval", 0.0)
    store = StreamingMiner.open(directory, **kwargs)
    for row in rows:
        store.ingest(row)
    return store


class TestHealthyStore:
    def test_live_store_reports_without_touching_writer(self, tmp_path):
        store = _run_store(tmp_path / "store")
        before = _store_state(tmp_path / "store")

        report = compute_health(tmp_path / "store")
        assert report.healthy and report.exists and not report.broken
        assert report.n_transactions == store.n_transactions
        assert report.pending_records == store.pending_records
        assert report.flight_records > 0
        assert report.trace_id
        # Read-only: no file in the store changed size or content age.
        assert _store_state(tmp_path / "store") == before
        store.close()

    def test_quantiles_cover_hot_paths(self, tmp_path):
        store = _run_store(tmp_path / "store")
        store.close()
        report = compute_health(tmp_path / "store")
        assert "wal.append.seconds" in report.quantiles
        row = report.quantiles["wal.append.seconds"]
        assert row["count"] == len(ROWS)
        assert row["p50"] is not None and row["p50"] <= row["p99"]

    def test_closed_store_wal_lag_matches_snapshot_edge(self, tmp_path):
        store = _run_store(tmp_path / "store", compact_segments=2,
                           segment_max_bytes=200)
        n = store.n_transactions
        store.close()
        covered = max(
            int(name.split("-")[1].split(".")[0])
            for name in os.listdir(tmp_path / "store")
            if name.endswith(".rsnp")
        )
        report = compute_health(tmp_path / "store")
        assert report.snapshot_covered == covered
        assert report.wal_lag_records == n - covered
        assert report.wal_lag_bytes <= report.wal_bytes

    def test_describe_renders_every_section(self, tmp_path):
        store = _run_store(tmp_path / "store", compact_segments=2,
                           segment_max_bytes=200)
        store.close()
        text = compute_health(tmp_path / "store").describe()
        assert "HEALTHY" in text
        assert "wal:" in text and "wal lag past snapshot:" in text
        assert "snapshot:" in text and "flight:" in text
        assert "quantiles:" in text and "p50=" in text

    def test_empty_directory_is_unknown_not_crash(self, tmp_path):
        os.makedirs(tmp_path / "empty")
        report = compute_health(tmp_path / "empty")
        assert report.exists  # the directory itself exists
        assert report.flight_records == 0 and report.wal_records == 0
        assert "flight: no recorder data" in report.describe()

    def test_missing_directory_reports_nothing_found(self, tmp_path):
        report = compute_health(tmp_path / "nowhere")
        assert not report.exists and not report.healthy
        assert any("no store state" in note for note in report.notes)

    def test_probe_off_store_still_reports_wal_facts(self, tmp_path):
        store = StreamingMiner.open(tmp_path / "store", batch_records=3)
        for row in ROWS:
            store.ingest(row)
        store.close()  # close compacts: the snapshot covers the stream
        report = compute_health(tmp_path / "store")
        assert report.healthy
        assert report.snapshot_covered == len(ROWS)
        assert report.flight_records == 0
        # Without a recorder the snapshot name still bounds the count.
        assert report.n_transactions == len(ROWS)


class TestCrashedStore:
    """The acceptance criterion: top renders after a kill, writer never runs."""

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_top_renders_after_crash_at_every_point(
        self, tmp_path, point, capsys
    ):
        plan = FaultPlan(crash_at=point, crash_on_hit=2)
        with pytest.raises(InjectedCrash):
            store = StreamingMiner.open(
                tmp_path / "store",
                batch_records=3,
                compact_segments=2,
                segment_max_bytes=200,
                fault_plan=plan,
                probe=Probe(),
                flight_interval=0.0,
            )
            with store:
                for row in LONG_ROWS:
                    store.ingest(row)
                pytest.fail(f"crash point {point} never fired")

        flight_dir = tmp_path / "store" / "flight"
        before = scan_flight(flight_dir)

        assert main(["top", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert f"store {tmp_path / 'store'}:" in out
        assert "wal:" in out and "flight:" in out
        if point == "flight.emit.torn":
            assert "torn tail" in out

        # Rendering the report repaired nothing and wrote nothing.
        after = scan_flight(flight_dir)
        assert [i.valid_end for i in after.segments] == [
            i.valid_end for i in before.segments
        ]
        assert after.clean == before.clean

    def test_mid_fold_break_reports_broken(self, tmp_path, capsys):
        # A budget trip mid-fold marks the store broken; the flight
        # recorder's best-effort final record carries the flag out to
        # any attached reader even though the writer never closed.
        store = StreamingMiner.open(
            tmp_path / "store",
            batch_records=5,
            fold_timeout=1e9,
            probe=Probe(),
            flight_interval=0.0,
        )
        for row in ROWS[:4]:
            store.ingest(row)
        store._fold_timeout = 1e-9  # every guard check is past due
        with pytest.raises(MiningTimeout):
            store.ingest(ROWS[4])
        assert store.broken

        report = compute_health(tmp_path / "store")
        assert report.broken and not report.healthy
        assert main(["top", str(tmp_path / "store")]) == 0
        assert "BROKEN" in capsys.readouterr().out
        store.close()

    def test_torn_recorder_tail_tolerated_and_noted(self, tmp_path):
        store = _run_store(tmp_path / "store")
        store.close()
        flight_dir = tmp_path / "store" / "flight"
        (name,) = [
            n for n in sorted(os.listdir(flight_dir)) if n.endswith(".jsonl")
        ][-1:]
        with open(flight_dir / name, "ab") as handle:
            handle.write(b"\x01torn tail byt")

        report = compute_health(tmp_path / "store")
        assert report.healthy  # a torn telemetry tail is not an outage
        assert report.flight_torn
        assert any("flight recorder tail torn" in n for n in report.notes)
        assert report.flight_records > 0


class TestTopCli:
    def test_json_output_is_one_parseable_document(self, tmp_path, capsys):
        store = _run_store(tmp_path / "store")
        store.close()
        assert main(["top", str(tmp_path / "store"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == str(tmp_path / "store")
        assert payload["healthy"] is True
        assert set(payload) == {
            field.name for field in dataclasses.fields(HealthReport)
        }

    def test_missing_store_exits_two(self, tmp_path, capsys):
        code = main(["top", str(tmp_path / "nowhere")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestTopWatch:
    """The --watch loop: fake-clock iteration, re-render, clean SIGINT."""

    def test_watch_rerenders_on_store_change_and_exits_on_interrupt(
        self, tmp_path, capsys, monkeypatch
    ):
        import shutil
        import time as time_module

        from repro.serving.streaming import _list_snapshots

        store = _run_store(tmp_path / "store")
        store.close()
        directory = str(tmp_path / "store")
        covered, newest = _list_snapshots(directory)[-1]
        generations_before = len(_list_snapshots(directory))
        sleeps = []

        def fake_sleep(seconds):
            # Iteration 1: a new snapshot generation lands between
            # renders (what a live compacting writer does).  Iteration
            # 2: the operator hits Ctrl-C.
            sleeps.append(seconds)
            if len(sleeps) == 1:
                shutil.copyfile(
                    newest,
                    os.path.join(
                        directory, f"snapshot-{covered + 5:012d}.rsnp"
                    ),
                )
            else:
                raise KeyboardInterrupt

        monkeypatch.setattr(time_module, "sleep", fake_sleep)
        assert main(["top", directory, "--watch", "0.25", "--json"]) == 0
        assert sleeps == [0.25, 0.25]

        renders = [
            json.loads(chunk)
            for chunk in capsys.readouterr().out.split("\n\n")
            if chunk.strip()
        ]
        assert len(renders) == 2  # initial render + one refresh
        assert renders[0]["snapshot_generations"] == generations_before
        assert renders[1]["snapshot_generations"] == generations_before + 1
        assert renders[1]["snapshot_covered"] == covered + 5

"""Snapshot codec: round-trip exactness, determinism, corruption rejection."""

import os
import random

import pytest

from repro.core.incremental import IncrementalMiner
from repro.serving import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotError,
    dumps_snapshot,
    load_snapshot,
    loads_snapshot,
    save_snapshot,
)


def _random_miner(seed, n_rows=40, universe="abcdefg", density=0.45):
    rng = random.Random(seed)
    miner = IncrementalMiner()
    miner.extend(
        [[l for l in universe if rng.random() < density] for _ in range(n_rows)]
    )
    return miner


class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["bitint", "numpy"])
    def test_exact_for_every_smin(self, backend):
        miner = _random_miner(1)
        restored = loads_snapshot(dumps_snapshot(miner), backend=backend)
        assert restored.n_transactions == miner.n_transactions
        assert restored.n_items == miner.n_items
        for smin in range(1, miner.n_transactions + 2):
            assert dict(restored.closed_sets(smin)) == dict(miner.closed_sets(smin))

    def test_header_fields(self):
        blob = dumps_snapshot(_random_miner(2))
        assert blob[:4] == SNAPSHOT_MAGIC
        assert blob[4] == SNAPSHOT_VERSION

    def test_empty_miner(self):
        miner = IncrementalMiner()
        restored = loads_snapshot(dumps_snapshot(miner))
        assert restored.n_transactions == 0
        assert dict(restored.closed_sets(1)) == {}
        restored.add(["a"])
        assert dict(restored.closed_sets(1)) == {("a",): 1}

    def test_arbitrary_label_types(self):
        miner = IncrementalMiner()
        miner.extend([[1, "a", 2.5], [1, "a"], [True]])
        restored = loads_snapshot(dumps_snapshot(miner))
        assert dict(restored.closed_sets(1)) == dict(miner.closed_sets(1))

    def test_unserialisable_label_rejected(self):
        miner = IncrementalMiner()
        miner.add([("tuple", "label")])
        with pytest.raises(SnapshotError, match="label"):
            dumps_snapshot(miner)


class TestDeterminism:
    def test_dump_load_dump_is_identity(self):
        blob = dumps_snapshot(_random_miner(3))
        assert dumps_snapshot(loads_snapshot(blob)) == blob

    def test_repeated_dumps_identical(self):
        miner = _random_miner(4)
        assert dumps_snapshot(miner) == dumps_snapshot(miner)

    def test_rebuilt_and_organic_trees_encode_identically(self):
        """Flat->tree rebuild must reproduce the organic tree byte-for-byte.

        One copy grows its tree organically (pending snapshot decoded
        straight to a tree by the bulk ingest), the other folds the same
        delta into the flat form and only rebuilds the tree when the
        dump asks for it.  The rebuild theorem says the two trees are
        node-for-node identical, so the snapshots must match exactly.
        """
        blob = dumps_snapshot(_random_miner(5))
        delta = [["a", "c"], ["b"], ["a", "c"]]

        flat_route = loads_snapshot(blob)
        for row in delta:  # small adds stay in the flat representation
            flat_route.add(row)
        assert flat_route._tree is None

        tree_route = loads_snapshot(blob)
        tree_route._ensure_tree()
        for row in delta:
            tree_route.add(row)

        assert dumps_snapshot(flat_route) == dumps_snapshot(tree_route)


class TestLazyLoad:
    def test_load_defers_decoding(self):
        restored = loads_snapshot(dumps_snapshot(_random_miner(6)))
        assert restored._tree is None
        assert restored._flat is None
        assert restored._pending is not None
        assert restored.repository_size > 0  # answered from the header

    def test_warm_delta_stays_flat(self):
        miner = _random_miner(7)
        restored = loads_snapshot(dumps_snapshot(miner))
        delta = [["a", "b"], ["f", "g"], []]
        restored.extend(delta)
        assert restored._tree is None  # small delta: no tree rebuild
        reference = _random_miner(7)
        reference.extend(delta)
        assert dict(restored.closed_sets(1)) == dict(reference.closed_sets(1))

    def test_bulk_delta_rebuilds_tree(self):
        miner = _random_miner(8, n_rows=10)
        restored = loads_snapshot(dumps_snapshot(miner))
        rng = random.Random(88)
        delta = [
            [l for l in "abcdefg" if rng.random() < 0.4] for _ in range(30)
        ]
        restored.extend(delta)
        assert restored._tree is not None  # delta dwarfs history
        reference = _random_miner(8, n_rows=10)
        reference.extend(delta)
        assert dict(restored.closed_sets(1)) == dict(reference.closed_sets(1))

    def test_queries_without_tree(self):
        miner = _random_miner(9)
        restored = loads_snapshot(dumps_snapshot(miner))
        assert restored.support_of(["a"]) == miner.support_of(["a"])
        assert restored.support_of(["a", "b"]) == miner.support_of(["a", "b"])
        assert dict(restored.supersets_of(["a"], 2)) == dict(
            miner.supersets_of(["a"], 2)
        )
        assert restored.top_k(5) == miner.top_k(5)
        assert restored._tree is None  # all served from the flat form


class TestCorruption:
    def test_not_bytes(self):
        with pytest.raises(SnapshotError):
            loads_snapshot("not bytes")

    def test_too_short(self):
        with pytest.raises(SnapshotError):
            loads_snapshot(b"RS")

    def test_bad_magic(self):
        blob = bytearray(dumps_snapshot(_random_miner(10)))
        blob[0] ^= 0xFF
        with pytest.raises(SnapshotError, match="magic"):
            loads_snapshot(bytes(blob))

    def test_unknown_version(self):
        blob = bytearray(dumps_snapshot(_random_miner(11)))
        blob[4] = 99
        with pytest.raises(SnapshotError, match="version"):
            loads_snapshot(bytes(blob))

    def test_checksum_catches_flipped_bit(self):
        blob = bytearray(dumps_snapshot(_random_miner(12)))
        blob[len(blob) // 2] ^= 0x10
        with pytest.raises(SnapshotError):
            loads_snapshot(bytes(blob))

    def test_truncation(self):
        blob = dumps_snapshot(_random_miner(13))
        for cut in (5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(SnapshotError):
                loads_snapshot(blob[:cut])


class TestFiles:
    def test_save_load_round_trip(self, tmp_path):
        miner = _random_miner(14)
        path = tmp_path / "repo.snap"
        n_bytes = save_snapshot(miner, str(path))
        assert path.stat().st_size == n_bytes
        restored = load_snapshot(str(path))
        assert dict(restored.closed_sets(1)) == dict(miner.closed_sets(1))

    def test_save_leaves_no_temp_file(self, tmp_path):
        save_snapshot(_random_miner(15), str(tmp_path / "repo.snap"))
        assert os.listdir(tmp_path) == ["repo.snap"]

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.snap"
        path.write_bytes(b"RSNP\x01garbage")
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))


class TestDurableWrite:
    """Satellite: save_snapshot's atomic swap is actually durable —
    temp file fsynced before the rename, parent directory fsynced
    after."""

    def test_fsync_ordering(self, tmp_path, monkeypatch):
        from repro.serving import snapshot as snapmod

        events = []
        real_fsync = os.fsync
        real_replace = os.replace

        def spy_fsync(fd):
            events.append(("fsync", fd))
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace", src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        snapmod.save_snapshot(_random_miner(20), str(tmp_path / "repo.snap"))
        kinds = [event[0] for event in events]
        # fsync(temp) strictly before the rename, directory fsync after.
        assert kinds == ["fsync", "replace", "fsync"]
        assert str(tmp_path / "repo.snap") in events[1][2]

    def test_crash_before_rename_leaves_old_snapshot_intact(self, tmp_path):
        from repro.runtime import FaultPlan, InjectedCrash
        from repro.serving.snapshot import write_bytes_durable

        path = tmp_path / "repo.snap"
        write_bytes_durable(str(path), b"generation-1")
        plan = FaultPlan(crash_at="compact.save")

        def crash_after_sync(step):
            if step == "synced":
                plan.reach("compact.save")

        with pytest.raises(InjectedCrash):
            write_bytes_durable(
                str(path), b"generation-2", on_step=crash_after_sync
            )
        # The visible file is still the old generation; the temp file
        # is left behind exactly as a real kill would leave it.
        assert path.read_bytes() == b"generation-1"
        assert any(".tmp." in name for name in os.listdir(tmp_path))

    def test_ordinary_write_failure_cleans_temp_file(self, tmp_path):
        from repro.serving.snapshot import write_bytes_durable

        class Boom(Exception):
            pass

        def explode(step):
            raise Boom(step)

        path = tmp_path / "repo.snap"
        # on_step failures happen *after* the temp write; simulate an
        # ordinary I/O failure inside the write itself instead.
        import repro.serving.snapshot as snapmod

        real_open = open

        def failing_open(file, *args, **kwargs):
            if str(file).startswith(str(path)) and ".tmp." in str(file):
                handle = real_open(file, *args, **kwargs)
                handle.close()
                raise OSError("disk full")
            return real_open(file, *args, **kwargs)

        import builtins

        original = builtins.open
        builtins.open = failing_open
        try:
            with pytest.raises(OSError, match="disk full"):
                write_bytes_durable(str(path), b"data")
        finally:
            builtins.open = original
        assert os.listdir(tmp_path) == []


class TestLazyDecodeAudit:
    """Header-only queries must decode zero family rows.

    ``loads_snapshot`` defers row decoding to the first real repository
    touch; the ``serving.rows_decoded`` histogram audits exactly when
    that happens, so these tests pin the lazy path: header-answerable
    queries keep the histogram empty, and the first repository touch
    records the full family size exactly once.
    """

    def _restored_with_probe(self, seed=7):
        from repro.obs import Probe

        miner = _random_miner(seed)
        probe = Probe()
        restored = loads_snapshot(dumps_snapshot(miner), probe=probe)
        return miner, restored, probe

    def _decoded(self, probe):
        return probe.metrics.snapshot()["histograms"].get(
            "serving.rows_decoded"
        )

    def test_header_only_queries_decode_no_rows(self):
        miner, restored, probe = self._restored_with_probe()
        assert restored.support_of(["never-seen-item"]) == 0
        assert restored.support_of([]) == miner.n_transactions
        assert restored.top_k(0) == ()
        assert restored.n_transactions == miner.n_transactions
        assert restored.n_items == miner.n_items
        assert restored.repository_size > 0  # pending header, not a decode
        decoded = self._decoded(probe)
        assert decoded is None or decoded["count"] == 0

    def test_first_repository_touch_decodes_exactly_once(self):
        miner, restored, probe = self._restored_with_probe(8)
        n_sets = restored.repository_size
        family = restored.closed_sets(1)
        decoded = self._decoded(probe)
        assert decoded["count"] == 1
        assert decoded["sum"] == n_sets == len(family)
        # Follow-up queries reuse the decoded repository: no more rows.
        restored.top_k(3)
        restored.support_of([next(iter(family))[0]])
        assert self._decoded(probe)["count"] == 1

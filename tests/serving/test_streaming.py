"""Durable streaming ingest: crash-at-every-point recovery identity.

The heart of the suite is the property test: kill the ingest pipeline
at every named FaultPlan crash point and prove that the recovered
engine answers every query identically to a process that never
crashed — and that no acknowledged transaction is lost.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.incremental import IncrementalMiner
from repro.obs import Probe
from repro.runtime import FaultPlan, InjectedCrash, MiningTimeout
from repro.serving import CRASH_POINTS, StreamingMiner, WalError
from repro.serving.wal import scan_wal


def _rows(seed=11, n=40, universe="abcdefg", density=0.45):
    rng = random.Random(seed)
    return [
        [label for label in universe if rng.random() < density] or ["a"]
        for _ in range(n)
    ]


ROWS = _rows()


def _cold(rows):
    miner = IncrementalMiner()
    miner.extend(rows)
    return miner


def _same_answers(streaming, cold):
    assert streaming.n_transactions == cold.n_transactions
    for smin in (1, 2, 4):
        assert dict(streaming.closed_sets(smin)) == dict(cold.closed_sets(smin))
    assert streaming.top_k(10) == cold.top_k(10)
    assert streaming.support_of(["a", "b"]) == cold.support_of(["a", "b"])


class TestLifecycle:
    def test_ingest_equals_cold_mine(self, tmp_path):
        store = StreamingMiner.open(tmp_path / "store", batch_records=7)
        for row in ROWS:
            store.ingest(row)
        store.fold()
        _same_answers(store, _cold(ROWS))
        store.close()

    def test_reopen_restores_exact_state(self, tmp_path):
        with StreamingMiner.open(
            tmp_path / "store", batch_records=5, segment_max_bytes=512
        ) as store:
            for row in ROWS:
                store.ingest(row)
        reopened = StreamingMiner.open(tmp_path / "store")
        assert reopened.recovery.clean
        _same_answers(reopened, _cold(ROWS))
        reopened.close()

    def test_unfolded_tail_is_replayed(self, tmp_path):
        # Large batch: nothing ever folds, everything lives in the log.
        store = StreamingMiner.open(tmp_path / "store", batch_records=1000)
        for row in ROWS:
            store.ingest(row)
        assert store.pending_records == len(ROWS)
        store._wal.close()  # abandon without folding (simulated death)
        reopened = StreamingMiner.open(tmp_path / "store")
        assert reopened.recovery.replayed_records == len(ROWS)
        _same_answers(reopened, _cold(ROWS))
        reopened.close()

    def test_compaction_prunes_log_and_keeps_generations(self, tmp_path):
        store = StreamingMiner.open(
            tmp_path / "store",
            batch_records=4,
            compact_segments=2,
            segment_max_bytes=256,
            keep_snapshots=2,
        )
        for row in ROWS:
            store.ingest(row)
        store.close()
        names = sorted(os.listdir(tmp_path / "store"))
        snaps = [n for n in names if n.endswith(".rsnp")]
        assert 1 <= len(snaps) <= 2  # surplus generations retired
        # The log holds only the tail past the newest snapshot.
        covered = int(snaps[-1].split("-")[1].split(".")[0])
        scan = scan_wal(tmp_path / "store" / "wal")
        assert all(seq >= covered for seq, _ in scan.records)

    def test_sequence_numbers_are_global_and_stable(self, tmp_path):
        store = StreamingMiner.open(tmp_path / "store", batch_records=3)
        seqs = [store.ingest(row) for row in ROWS[:10]]
        assert seqs == list(range(10))
        store.close()
        reopened = StreamingMiner.open(tmp_path / "store")
        assert reopened.ingest(["z"]) == 10
        reopened.close()

    def test_close_is_idempotent_and_closed_store_refuses(self, tmp_path):
        store = StreamingMiner.open(tmp_path / "store")
        store.ingest(["a"])
        store.close()
        store.close()
        with pytest.raises(WalError, match="closed"):
            store.ingest(["b"])

    def test_direct_construction_refused(self, tmp_path):
        with pytest.raises(TypeError, match="open"):
            StreamingMiner(tmp_path / "store")


class TestCrashRecovery:
    """Kill at every named point; the survivor must answer identically."""

    @pytest.mark.parametrize("point", CRASH_POINTS)
    @pytest.mark.parametrize("hit", [1, 2])
    def test_crash_at_every_point_recovers_identically(self, tmp_path, point, hit):
        plan = FaultPlan(crash_at=point, crash_on_hit=hit)
        acked = 0
        # The probe turns the flight recorder on, so the flight.emit /
        # flight.emit.torn points fire too; opening inside the raises
        # block covers the crash-at-first-emit case.
        with pytest.raises(InjectedCrash):
            store = StreamingMiner.open(
                tmp_path / "store",
                batch_records=3,
                compact_segments=2,
                segment_max_bytes=200,
                fsync="always",
                fault_plan=plan,
                probe=Probe(),
                flight_interval=0.0,
            )
            with store:
                for row in ROWS:
                    store.ingest(row)
                    acked += 1
                pytest.fail(f"crash point {point} (hit {hit}) never fired")

        recovered = StreamingMiner.open(tmp_path / "store")
        n = recovered.n_transactions
        # No acked transaction may be lost; at most the one in-flight
        # record (logged but not yet acknowledged) may additionally
        # survive.  Either way the state is an exact stream prefix.
        assert n in (acked, acked + 1)
        _same_answers(recovered, _cold(ROWS[:n]))
        recovered.close()

    @pytest.mark.parametrize("point", ["compact.prune", "wal.prune"])
    def test_no_segment_pruned_before_snapshot_durable(self, tmp_path, point):
        # Crashing right before the prune leaves the snapshot *and* the
        # full log: recovery must not double-apply the overlap.
        plan = FaultPlan(crash_at=point)
        store = StreamingMiner.open(
            tmp_path / "store",
            batch_records=3,
            compact_segments=1,
            segment_max_bytes=150,
            fault_plan=plan,
        )
        acked = 0
        with pytest.raises(InjectedCrash):
            for row in ROWS:
                store.ingest(row)
                acked += 1
        snaps = [
            name
            for name in os.listdir(tmp_path / "store")
            if name.endswith(".rsnp")
        ]
        assert snaps, "crash fired before any snapshot was durable"
        scan = scan_wal(tmp_path / "store" / "wal")
        covered = max(int(n.split("-")[1].split(".")[0]) for n in snaps)
        # The log still reaches back to (at least) the snapshot edge.
        assert scan.records and scan.records[0][0] <= covered
        recovered = StreamingMiner.open(tmp_path / "store")
        _same_answers(recovered, _cold(ROWS[: recovered.n_transactions]))
        recovered.close()

    def test_corrupt_newest_snapshot_falls_back_a_generation(self, tmp_path):
        store = StreamingMiner.open(
            tmp_path / "store",
            batch_records=4,
            compact_segments=1,
            segment_max_bytes=200,
            keep_snapshots=2,
        )
        for row in ROWS:
            store.ingest(row)
        store.close()
        snaps = sorted(
            name
            for name in os.listdir(tmp_path / "store")
            if name.endswith(".rsnp")
        )
        assert len(snaps) == 2
        newest = tmp_path / "store" / snaps[-1]
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(data)

        recovered = StreamingMiner.open(tmp_path / "store")
        report = recovered.recovery
        assert not report.clean
        assert [os.path.basename(p) for p in report.corrupt_snapshots] == [
            snaps[-1]
        ]
        assert os.path.basename(report.snapshot_path) == snaps[0]
        # The older generation plus the (unpruned-at-its-time) tail
        # still reconstructs the full stream...
        _same_answers(recovered, _cold(ROWS[: recovered.n_transactions]))
        recovered.close()

    def test_stale_compaction_tmp_file_cleaned_on_open(self, tmp_path):
        d = tmp_path / "store"
        store = StreamingMiner.open(d, batch_records=4)
        for row in ROWS[:8]:
            store.ingest(row)
        store.close()
        stale = d / "snapshot-000000000099.rsnp.tmp.12345"
        stale.write_bytes(b"half-written snapshot")
        reopened = StreamingMiner.open(d)
        assert not stale.exists()
        reopened.close()

    def test_recovery_report_describe_mentions_damage(self, tmp_path):
        store = StreamingMiner.open(tmp_path / "store", batch_records=100)
        for row in ROWS[:6]:
            store.ingest(row)
        store._wal.close()
        segment = next(
            (tmp_path / "store" / "wal").glob("segment-*.wal")
        )
        with open(segment, "ab") as handle:
            handle.write(b"torn!")
        recovered = StreamingMiner.open(tmp_path / "store")
        report = recovered.recovery
        assert not report.clean
        assert report.truncated_bytes == len(b"torn!")
        text = report.describe()
        assert "truncated 5 byte(s)" in text
        assert f"transactions {report.recovered_transactions}" in text
        _same_answers(recovered, _cold(ROWS[:6]))
        recovered.close()


class TestFoldBudget:
    def test_tripped_fold_marks_store_broken_but_loses_nothing(self, tmp_path):
        plan = FaultPlan(timeout_at=1)
        store = StreamingMiner.open(
            tmp_path / "store", batch_records=5, fold_timeout=1e9,
            fault_plan=None,
        )
        # Arm the injected trip via the per-fold guard's fault plan:
        # easiest honest route is a real tiny timeout on a fold.
        for row in ROWS[:4]:
            store.ingest(row)
        store._fold_timeout = 1e-9  # every check is already past due
        with pytest.raises(MiningTimeout):
            store.ingest(ROWS[4])
        assert store.broken
        with pytest.raises(WalError, match="re-open"):
            store.ingest(["x"])
        with pytest.raises(WalError, match="re-open"):
            store.compact()
        store.close()  # closes the log only; durable state untouched

        recovered = StreamingMiner.open(tmp_path / "store")
        assert recovered.recovery.replayed_records == 5
        _same_answers(recovered, _cold(ROWS[:5]))
        recovered.close()


class TestObservability:
    def test_counters_and_spans_flow_through_probe(self, tmp_path):
        probe = Probe()
        store = StreamingMiner.open(
            tmp_path / "store",
            batch_records=4,
            compact_segments=1,
            segment_max_bytes=200,
            probe=probe,
        )
        for row in ROWS[:20]:
            store.ingest(row)
        store.close()
        counters = probe.metrics.snapshot()["counters"]
        assert counters["wal.appends"] == 20
        assert counters["wal.folds"] >= 4
        assert counters["wal.folded_records"] == 20
        assert counters["compaction.runs"] >= 1
        assert counters["compaction.snapshot_bytes"] > 0
        names = {record["name"] for record in probe.tracer.records}
        assert {"serve.recover", "serve.fold", "serve.compact"} <= names

    def test_probe_on_equals_probe_off(self, tmp_path):
        # Probing (histograms + flight recorder included) must never
        # change what the store answers — across ingest, fold, compact
        # and a reopen.
        def run(name, probe):
            store = StreamingMiner.open(
                tmp_path / name,
                batch_records=4,
                compact_segments=1,
                segment_max_bytes=200,
                probe=probe,
                flight_interval=0.0,
            )
            for row in ROWS:
                store.ingest(row)
            store.fold()
            store.compact()
            answers = {
                "n": store.n_transactions,
                "closed": {
                    smin: dict(store.closed_sets(smin)) for smin in (1, 2, 4)
                },
                "top": store.top_k(10),
                "support": store.support_of(["a", "b"]),
            }
            store.close()
            reopened = StreamingMiner.open(tmp_path / name)
            assert dict(reopened.closed_sets(2)) == answers["closed"][2]
            reopened.close()
            return answers

        assert run("off", None) == run("on", Probe())

    def test_wal_append_histograms_track_every_record(self, tmp_path):
        probe = Probe()
        store = StreamingMiner.open(
            tmp_path / "store", batch_records=4, probe=probe
        )
        for row in ROWS[:12]:
            store.ingest(row)
        store.close()
        histograms = probe.metrics.snapshot()["histograms"]
        assert histograms["wal.append.seconds"]["count"] == 12
        assert histograms["wal.record.bytes"]["count"] == 12
        assert histograms["wal.record.bytes"]["min"] >= 1
        # Fold batches: 3 size-4 folds + the close fold of the rest.
        assert histograms["serve.fold.records"]["count"] >= 3

    def test_flight_recorder_rides_the_probe(self, tmp_path):
        probe = Probe()
        store = StreamingMiner.open(
            tmp_path / "store",
            batch_records=4,
            probe=probe,
            flight_interval=0.0,
        )
        assert store.flight is not None
        for row in ROWS[:12]:
            store.ingest(row)
        store.close()
        from repro.obs.recorder import scan_flight

        scan = scan_flight(tmp_path / "store" / "flight")
        assert scan.clean
        assert len(scan.records) >= 4  # open + folds + final close emit
        tail = scan.records[-1]
        assert tail["status"]["n_transactions"] == 12
        assert tail["status"]["broken"] is False
        assert tail["metrics"]["counters"]["wal.appends"] == 12

    def test_flight_true_demands_probe(self, tmp_path):
        with pytest.raises(WalError, match="[Ff]light"):
            StreamingMiner.open(tmp_path / "store", flight=True)

    def test_flight_off_writes_nothing(self, tmp_path):
        store = StreamingMiner.open(
            tmp_path / "store", probe=Probe(), flight=False
        )
        store.ingest(["a"])
        store.close()
        assert store.flight is None
        assert not os.path.isdir(tmp_path / "store" / "flight")

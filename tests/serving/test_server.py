"""The serve daemon: differential, hot-swap soak, admission, lifecycle.

The archetype deliverable of the serving daemon is its harness:

* an **in-process client** (:class:`ServeHarness`) that runs the real
  asyncio server on a private event-loop thread and speaks real HTTP
  to it, so every test exercises the production network path;
* a **serve-vs-CLI differential** suite proving each endpoint's answer
  byte-identical to the one-shot ``repro-mine query`` on the same
  snapshot, for every query verb and kernel backend;
* a **concurrent-swap soak**: client threads hammer ``/top_k`` while a
  writer produces new snapshot generations and the server hot-swaps
  them — every response must match the canonical answer of exactly the
  generation it claims, and ``serve.swap.count`` must equal the
  generations produced;
* **admission control**: an exhausted per-request budget answers 503
  with ``Retry-After`` and provably leaves the store untouched; a full
  bounded queue answers 429.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.cli import EXIT_USER_ERROR, main
from repro.kernels import available_backends
from repro.serving import QueryServer, StreamingMiner, load_snapshot
from repro.serving.queries import QUERY_VERBS, query_lines
from repro.serving.streaming import _list_snapshots

TRANSACTIONS = [
    [1, 2, 3],
    [1, 2],
    [2, 3],
    [1, 3],
    [1, 2, 3, 4],
    [2, 4],
    [3, 4],
    [1, 2],
    [4, 5],
    [2, 3, 4],
]

EXTRA_ROUNDS = [
    [[1, 2, 5], [2, 5], [1, 5]],
    [[3, 4, 5], [1, 2, 3], [2, 3, 5]],
    [[1, 4], [2, 4, 5], [1, 2, 3, 4]],
]


def build_store(path, transactions=TRANSACTIONS):
    """Ingest ``transactions`` and close: one snapshot generation on disk."""
    store = StreamingMiner.open(str(path), batch_records=4)
    for row in transactions:
        store.ingest(row)
    store.close()
    return str(path)


def newest_snapshot(store):
    covered, path = _list_snapshots(store)[-1]
    return covered, path


def store_state(directory):
    """(relative path, size, mtime_ns) of every file, recursively."""
    state = []
    for root, _, names in os.walk(directory):
        for name in names:
            path = os.path.join(root, name)
            stat = os.stat(path)
            state.append(
                (os.path.relpath(path, directory), stat.st_size, stat.st_mtime_ns)
            )
    return sorted(state)


class ServeHarness:
    """Run a :class:`QueryServer` on a private event-loop thread.

    The in-process test client of the suite: ``get()`` speaks real
    HTTP/1.1 over a real socket to the real asyncio server, and error
    statuses are returned (not raised) so admission tests can assert on
    them directly.
    """

    def __init__(self, server: QueryServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)

    def __enter__(self) -> "ServeHarness":
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(30)
        return self

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    @property
    def base(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"

    def get(self, path, timeout=30):
        """One GET; returns ``(status, headers, body)`` even on 4xx/5xx."""
        try:
            with urllib.request.urlopen(self.base + path, timeout=timeout) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def get_json(self, path, timeout=30):
        status, headers, body = self.get(path, timeout=timeout)
        return status, headers, json.loads(body)

    def post(self, path, payload, timeout=30):
        """One POST; ``payload`` is JSON-encoded unless already bytes."""
        data = payload if isinstance(payload, bytes) else json.dumps(
            payload
        ).encode("utf-8")
        request = urllib.request.Request(
            self.base + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()


@pytest.fixture
def store(tmp_path):
    return build_store(tmp_path / "store")


@pytest.fixture
def harness(store):
    with ServeHarness(QueryServer(store, poll_interval=30.0)) as handle:
        yield handle


#: verb -> (CLI argv tail after the snapshot path, endpoint URL,
#: expected non-default payload fields).
_DIFFERENTIAL = {
    "closed_sets": (["-s", "2"], "/closed_sets?smin=2", {"smin": 2}),
    "top_k": (
        ["--top", "5", "-s", "2"],
        "/top_k?k=5&smin=2",
        {"smin": 2, "k": 5},
    ),
    "supersets_of": (
        ["--supersets", "2,3"],
        "/supersets_of?items=2,3",
        {"items": "2,3"},
    ),
    "support_of": (
        ["--support", "1,2"],
        "/support_of?items=1,2",
        {"items": "1,2"},
    ),
}


class TestDifferential:
    """Every endpoint byte-equals one-shot ``repro query``, by construction."""

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("verb", QUERY_VERBS)
    def test_endpoint_byte_equals_cli(self, store, capsys, verb, backend):
        covered, snap_path = newest_snapshot(store)
        cli_tail, url, fields = _DIFFERENTIAL[verb]
        assert main(["query", snap_path, "--backend", backend] + cli_tail) == 0
        cli_out = capsys.readouterr().out
        assert cli_out, "the CLI answer must not be empty"

        with ServeHarness(
            QueryServer(store, backend=backend, poll_interval=30.0)
        ) as handle:
            status, _, body = handle.get(url)
        assert status == 200

        expected = {
            "verb": verb,
            "store": store,
            "generation": covered,
            "snapshot": os.path.basename(snap_path),
            "smin": 1,
            "lines": cli_out.splitlines(),
        }
        expected.update(fields)
        assert body == json.dumps(
            expected, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @pytest.mark.parametrize(
        "verb,get_url,payload",
        [
            ("supersets_of", "/supersets_of?items=2,3", {"items": [2, 3]}),
            ("supersets_of", "/supersets_of?items=2,3", [2, 3]),
            (
                "supersets_of",
                "/supersets_of?items=2,3&smin=2",
                {"items": [2, 3], "smin": 2},
            ),
            ("support_of", "/support_of?items=1,2", {"items": [1, 2]}),
            ("support_of", "/support_of?items=1,2", [1, 2]),
        ],
    )
    def test_post_body_byte_equals_get(self, harness, verb, get_url, payload):
        """A POSTed item list answers byte-identically to the GET form."""
        get_status, _, get_body = harness.get(get_url)
        post_status, _, post_body = harness.post(f"/{verb}", payload)
        assert (get_status, post_status) == (200, 200)
        assert post_body == get_body

    def test_post_rejected_on_non_item_verbs(self, harness):
        for path in ("/closed_sets", "/top_k?k=3", "/metrics", "/healthz"):
            status, _, body = harness.post(path, {"items": [1]})
            assert status == 405, path
            assert b"use GET" in body

    @pytest.mark.parametrize(
        "payload",
        [
            b"not json at all",
            {"no_items": 1},
            [],
            {"items": []},
            {"items": "2,3"},
            {"items": [1.5]},
            {"items": [True]},
            {"items": [1], "smin": "two"},
            {"items": [1], "smin": True},
        ],
    )
    def test_post_bad_bodies_answer_400(self, harness, payload):
        status, _, body = harness.post("/support_of", payload)
        assert status == 400
        assert b"error" in body


class TestHotSwap:
    def test_swap_serves_new_generation(self, tmp_path):
        store = build_store(tmp_path / "store")
        gen1, _ = newest_snapshot(store)
        server = QueryServer(store, poll_interval=30.0)
        with ServeHarness(server) as handle:
            status, _, before = handle.get_json("/top_k?k=3")
            assert status == 200 and before["generation"] == gen1

            writer = StreamingMiner.open(store, batch_records=2)
            for row in EXTRA_ROUNDS[0]:
                writer.ingest(row)
            writer.close()
            gen2, _ = newest_snapshot(store)
            assert gen2 > gen1

            assert server.reload_if_changed() is True
            assert server.reload_if_changed() is False  # idempotent
            status, _, after = handle.get_json("/top_k?k=3")
            assert status == 200 and after["generation"] == gen2
        counters = server.metrics.snapshot()["counters"]
        assert counters["serve.swap.count"] == 1
        assert counters["serve.load.count"] == 1

    def test_failed_swap_keeps_old_generation(self, store):
        server = QueryServer(store, poll_interval=30.0)
        gen1, path = newest_snapshot(store)
        with ServeHarness(server) as handle:
            bogus = os.path.join(
                store, f"snapshot-{gen1 + 7:012d}.rsnp"
            )
            with open(bogus, "wb") as fh:
                fh.write(b"not a snapshot at all")
            assert server.reload_if_changed() is False
            status, _, payload = handle.get_json("/closed_sets")
            assert status == 200 and payload["generation"] == gen1
        counters = server.metrics.snapshot()["counters"]
        assert counters["serve.swap.failures"] == 1
        assert "serve.swap.count" not in counters

    def test_background_watcher_swaps_without_manual_reload(self, tmp_path):
        store = build_store(tmp_path / "store")
        gen1, _ = newest_snapshot(store)
        server = QueryServer(store, poll_interval=0.05)
        with ServeHarness(server) as handle:
            writer = StreamingMiner.open(store, batch_records=2)
            for row in EXTRA_ROUNDS[1]:
                writer.ingest(row)
            writer.close()
            gen2, _ = newest_snapshot(store)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, _, payload = handle.get_json("/support_of?items=1")
                assert status == 200
                if payload["generation"] == gen2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail(f"watcher never swapped {gen1} -> {gen2}")


class TestSoak:
    def test_queries_race_swaps_with_zero_torn_reads(self, tmp_path):
        """200+ queries racing >=3 generation swaps; every response must
        match the canonical answer of exactly the generation it claims."""
        store = build_store(tmp_path / "store")
        expected = {}

        def record_expected():
            covered, path = newest_snapshot(store)
            expected[covered] = query_lines(load_snapshot(path), "top_k", k=8)
            return covered

        record_expected()
        server = QueryServer(store, poll_interval=30.0)
        stop = threading.Event()
        mismatches = []
        failures = []
        counts = [0] * 4

        with ServeHarness(server) as handle:
            def client(index):
                while not stop.is_set():
                    try:
                        status, _, payload = handle.get_json("/top_k?k=8")
                    except Exception as exc:  # noqa: BLE001 - collected
                        failures.append(repr(exc))
                        return
                    if status != 200:
                        failures.append((status, payload))
                        return
                    want = expected.get(payload["generation"])
                    if payload["lines"] != want:
                        mismatches.append(payload)
                    counts[index] += 1

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(len(counts))
            ]
            for thread in threads:
                thread.start()

            swaps = 0
            for rows in EXTRA_ROUNDS:
                writer = StreamingMiner.open(store, batch_records=2)
                for row in rows:
                    writer.ingest(row)
                writer.close()
                # Record the canonical answer BEFORE the flip so a
                # response can never cite a generation we cannot check.
                record_expected()
                assert server.reload_if_changed() is True
                swaps += 1
                time.sleep(0.05)

            deadline = time.monotonic() + 30
            while sum(counts) < 250 and time.monotonic() < deadline:
                time.sleep(0.02)
            stop.set()
            for thread in threads:
                thread.join(10)

        assert not failures, failures[:3]
        assert not mismatches, mismatches[:3]
        assert sum(counts) >= 200, f"only {sum(counts)} queries completed"
        assert swaps >= 3
        counters = server.metrics.snapshot()["counters"]
        assert counters["serve.swap.count"] == swaps
        assert len(expected) == swaps + 1


class TestAdmission:
    def test_budget_trip_answers_503_and_leaves_store_untouched(self, store):
        before = store_state(store)
        server = QueryServer(store, request_timeout=0.0, poll_interval=30.0)
        with ServeHarness(server) as handle:
            status, headers, payload = handle.get_json("/closed_sets?smin=2")
            assert status == 503
            assert "Retry-After" in headers
            assert "budget" in payload["error"]
        assert store_state(store) == before
        counters = server.metrics.snapshot()["counters"]
        assert counters["serve.admission.tripped"] == 1
        assert counters["serve.http.status.503"] == 1

    def test_full_queue_answers_429_with_retry_after(self, store):
        server = QueryServer(
            store, max_inflight=1, max_queue=0, retry_after=2.5,
            poll_interval=30.0,
        )
        release = threading.Event()
        entered = threading.Event()
        original = server._run_query

        def slow_query(*args, **kwargs):
            entered.set()
            release.wait(30)
            return original(*args, **kwargs)

        server._run_query = slow_query
        first = []
        with ServeHarness(server) as handle:
            blocker = threading.Thread(
                target=lambda: first.append(handle.get_json("/top_k?k=2"))
            )
            blocker.start()
            assert entered.wait(10)
            status, headers, payload = handle.get_json("/top_k?k=2")
            assert status == 429
            assert headers["Retry-After"] == "2"  # round(2.5) banker's
            assert "saturated" in payload["error"]
            release.set()
            blocker.join(30)
        assert first and first[0][0] == 200
        assert server._admission.snapshot()["rejected"] == 1

    def test_generous_budget_serves_normally(self, store):
        server = QueryServer(store, request_timeout=60.0, poll_interval=30.0)
        with ServeHarness(server) as handle:
            status, _, payload = handle.get_json("/closed_sets")
            assert status == 200 and payload["lines"]


class TestOperationalEndpoints:
    def test_metrics_exposes_per_endpoint_latency(self, harness):
        for path in ("/top_k?k=2", "/support_of?items=1", "/closed_sets"):
            assert harness.get(path)[0] == 200
        status, headers, body = harness.get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        for name in (
            "repro_serve_http_top_k_seconds_count",
            "repro_serve_http_support_of_seconds_count",
            "repro_serve_http_closed_sets_seconds_count",
            "repro_serve_http_requests_total",
            "repro_serve_load_count_total",
        ):
            assert name in text, name

    def test_healthz_reports_store_and_server_state(self, store, harness):
        status, _, payload = harness.get_json("/healthz")
        assert status == 200
        assert payload["healthy"] is True
        assert payload["directory"] == store
        covered, path = newest_snapshot(store)
        assert payload["server"]["generation"] == covered
        assert payload["server"]["snapshot"] == os.path.basename(path)
        admission = payload["server"]["admission"]
        assert admission["inflight"] == 0 and admission["rejected"] == 0

    def test_healthz_is_read_only(self, store, harness):
        before = store_state(store)
        assert harness.get("/healthz")[0] == 200
        assert store_state(store) == before

    def test_unknown_endpoint_404_and_bad_params_400(self, harness):
        assert harness.get("/nope")[0] == 404
        assert harness.get("/top_k")[0] == 400
        assert harness.get("/top_k?k=many")[0] == 400
        assert harness.get("/supersets_of")[0] == 400
        status, _, payload = harness.get_json("/top_k?k=-1")
        assert status == 400
        assert "k must be non-negative" in payload["error"]


class TestCliLifecycle:
    def test_store_without_snapshot_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["serve", str(empty)]) == EXIT_USER_ERROR
        assert "no snapshot generation" in capsys.readouterr().err

    def test_bad_workers_exits_2(self, store, capsys):
        assert main(["serve", store, "--workers", "0"]) == EXIT_USER_ERROR

    def test_sigterm_shuts_down_cleanly(self, store):
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", store, "--port", "0"],
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stderr.readline()
            match = re.search(r"http://[\d.]+:(\d+)", line)
            assert match, f"no address line, got {line!r}"
            port = int(match.group(1))
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as resp:
                assert resp.status == 200
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

"""Query engine semantics: memoization, invalidation, differential checks.

The hypothesis differential here is the serving layer's ground truth:
after *every* prefix of a random stream, the online engine's
``closed_sets`` must equal a cold batch ``mine(..., algorithm="ista")``
over that prefix, under both kernel backends.
"""

import random
from types import MappingProxyType

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaultPlan, MiningInterrupted, RunGuard, mine
from repro.core.incremental import IncrementalMiner
from repro.data.database import TransactionDatabase

rows_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=6),
    min_size=1,
    max_size=8,
)


class TestDifferentialVsBatchMiner:
    @settings(deadline=None, max_examples=25)
    @given(rows=rows_strategy, smin=st.integers(1, 3))
    @pytest.mark.parametrize("backend", ["bitint", "numpy"])
    def test_every_prefix_matches_batch_ista(self, backend, rows, smin):
        miner = IncrementalMiner(backend=backend)
        for k, row in enumerate(rows, start=1):
            miner.add(row)
            db = TransactionDatabase.from_iterable(
                rows[:k], item_order=list(range(7))
            )
            batch = mine(db, smin, algorithm="ista", backend=backend)
            got = {
                frozenset(labels): supp
                for labels, supp in miner.closed_sets(smin).items()
            }
            assert got == batch.as_frozensets(), (k, smin)

    @pytest.mark.parametrize("backend", ["bitint", "numpy"])
    def test_snapshot_of_every_prefix_matches(self, backend):
        """Warm-started continuation must track the batch miner too."""
        from repro.serving import dumps_snapshot, loads_snapshot

        rng = random.Random(42)
        rows = [
            [l for l in "abcde" if rng.random() < 0.5] for _ in range(12)
        ]
        miner = IncrementalMiner(backend=backend)
        for k, row in enumerate(rows, start=1):
            miner = loads_snapshot(dumps_snapshot(miner), backend=backend)
            miner.add(row)
            db = TransactionDatabase.from_iterable(rows[:k])
            batch = mine(db, 1, algorithm="ista", backend=backend)
            got = {
                frozenset(labels): supp
                for labels, supp in miner.closed_sets(1).items()
            }
            assert got == batch.as_frozensets(), k


class TestGuardCancellation:
    def test_mid_stream_cancel_keeps_processed_prefix(self):
        rows = [["a", "b"], ["b", "c"], ["a", "c"], ["a", "b", "c"], ["c"]]
        guard = RunGuard(fault_plan=FaultPlan(cancel_at=3, max_trips=1), stride=1)
        miner = IncrementalMiner(guard=guard)
        applied = 0
        with pytest.raises(MiningInterrupted):
            for row in rows:
                miner.add(row)
                applied += 1
        assert 0 < miner.n_transactions < len(rows)
        assert miner.n_transactions == applied  # tripped add was not applied
        db = TransactionDatabase.from_iterable(rows[: miner.n_transactions])
        batch = mine(db, 1, algorithm="ista")
        got = {
            frozenset(labels): supp
            for labels, supp in miner.closed_sets(1).items()
        }
        assert got == batch.as_frozensets()

    def test_mid_extend_cancel_leaves_reordered_prefix(self):
        """An interrupted batch equals a fully-processed prefix of the
        Section 3.4 reordering (transactions are atomic)."""
        rng = random.Random(5)
        rows = [[l for l in "abcd" if rng.random() < 0.6] for _ in range(20)]
        guard = RunGuard(fault_plan=FaultPlan(cancel_at=8, max_trips=1), stride=1)
        miner = IncrementalMiner(guard=guard)
        with pytest.raises(MiningInterrupted):
            miner.extend(rows)
        assert 0 < miner.n_transactions < len(rows)
        # Reconstruct the dedup + (size, mask)-sorted schedule the batch
        # used; the miner must hold exactly its first groups.
        masks = []
        for row in rows:
            mask = 0
            for label in row:
                mask |= 1 << miner._label_to_code[label]
            masks.append(mask)
        groups = {}
        for mask in masks:
            groups[mask] = groups.get(mask, 0) + 1
        schedule = sorted(groups.items(), key=lambda e: (bin(e[0]).count("1"), e[0]))
        prefix, total = [], 0
        for mask, weight in schedule:
            if total >= miner.n_transactions:
                break
            prefix.extend([mask] * weight)
            total += weight
        assert total == miner.n_transactions  # trip fell on a group boundary
        labels = miner._labels
        prefix_rows = [
            [labels[i] for i in range(len(labels)) if mask >> i & 1]
            for mask in prefix
        ]
        db = TransactionDatabase.from_iterable(prefix_rows)
        batch = mine(db, 1, algorithm="ista")
        got = {
            frozenset(k): v for k, v in miner.closed_sets(1).items()
        }
        assert got == batch.as_frozensets()

    def test_engine_usable_after_cancel(self):
        guard = RunGuard(fault_plan=FaultPlan(cancel_at=2, max_trips=1), stride=1)
        miner = IncrementalMiner(guard=guard)
        miner.add(["a"])
        with pytest.raises(MiningInterrupted):
            miner.extend([["a", "b"], ["b", "c"]])
        before = dict(miner.closed_sets(1))
        miner.add(["a", "b"])  # guard disarmed after its single trip
        assert dict(miner.closed_sets(1)) != before
        assert miner.support_of(["a"]) >= 1


class TestMemoization:
    @pytest.fixture
    def miner(self):
        miner = IncrementalMiner()
        miner.extend([["a", "b"], ["a", "b", "c"], ["a"], ["b", "c"]])
        return miner

    def test_repeat_query_returns_cached_object(self, miner):
        assert miner.closed_sets(2) is miner.closed_sets(2)
        assert miner.top_k(3) is miner.top_k(3)
        assert miner.supersets_of(["a"]) is miner.supersets_of(["a"])

    def test_distinct_smin_cached_separately(self, miner):
        assert miner.closed_sets(1) is not miner.closed_sets(2)

    def test_mutation_invalidates(self, miner):
        first = miner.closed_sets(1)
        generation = miner.generation
        miner.add(["c"])
        assert miner.generation > generation
        second = miner.closed_sets(1)
        assert second is not first
        # cl({c}) was {b, c}; the new bare ["c"] row makes {c} closed.
        assert ("c",) not in first
        assert second[("c",)] == 3

    def test_support_of_memoizes_zero(self, miner):
        # "a" and "zzz" both known? no — force a known-but-absent combo.
        miner.add(["z"])
        assert miner.support_of(["a", "z"]) == 0
        assert miner.support_of(["a", "z"]) == 0  # memo hit of a 0 value

    def test_results_are_read_only(self, miner):
        family = miner.closed_sets(1)
        assert isinstance(family, MappingProxyType)
        with pytest.raises(TypeError):
            family[("a",)] = 99


class TestDerivedQueries:
    @pytest.fixture
    def miner(self):
        rng = random.Random(17)
        miner = IncrementalMiner()
        miner.extend(
            [[l for l in "abcdef" if rng.random() < 0.5] for _ in range(30)]
        )
        return miner

    def test_top_k_against_closed_sets(self, miner):
        family = miner.closed_sets(2)
        top = miner.top_k(5, smin=2)
        assert len(top) == 5
        supports = sorted(family.values(), reverse=True)
        assert [supp for _, supp in top] == supports[:5]
        for labels, supp in top:
            assert family[labels] == supp

    def test_top_k_larger_than_family(self, miner):
        family = miner.closed_sets(1)
        top = miner.top_k(10_000)
        assert len(top) == len(family)
        assert dict(top) == dict(family)

    def test_top_k_zero(self, miner):
        assert miner.top_k(0) == ()

    def test_top_k_ties_break_by_size(self, miner):
        top = miner.top_k(len(miner.closed_sets(1)))
        for (a_labels, a_supp), (b_labels, b_supp) in zip(top, top[1:]):
            assert (-a_supp, len(a_labels)) <= (-b_supp, len(b_labels))

    def test_supersets_of_is_containment_filter(self, miner):
        for query in (["a"], ["a", "b"], ["c", "f"]):
            expected = {
                labels: supp
                for labels, supp in miner.closed_sets(2).items()
                if set(query) <= set(labels)
            }
            assert dict(miner.supersets_of(query, smin=2)) == expected

    def test_supersets_of_unknown_label(self, miner):
        assert dict(miner.supersets_of(["nope"])) == {}

    def test_supersets_of_empty_query(self, miner):
        assert miner.supersets_of([], smin=3) == miner.closed_sets(3)

    def test_invalid_arguments(self, miner):
        with pytest.raises(ValueError):
            miner.top_k(-1)
        with pytest.raises(ValueError):
            miner.top_k(1, smin=0)
        with pytest.raises(ValueError):
            miner.supersets_of(["a"], smin=0)


class TestBatchedIngest:
    @settings(deadline=None, max_examples=25)
    @given(rows=rows_strategy)
    def test_extend_equals_add_loop(self, rows):
        batched = IncrementalMiner()
        batched.extend(rows + rows)  # force duplicates through dedup
        serial = IncrementalMiner()
        for row in rows + rows:
            serial.add(row)
        assert dict(batched.closed_sets(1)) == dict(serial.closed_sets(1))
        assert batched.n_transactions == serial.n_transactions

    def test_duplicates_collapse_to_weighted_updates(self):
        rows = [["a"], ["a", "b"], ["b", "c"]] * 20
        batched = IncrementalMiner()
        batched.extend(rows)
        serial = IncrementalMiner()
        for row in rows:
            serial.add(row)
        # Three weighted updates versus sixty plain ones.
        assert batched.counters.intersections < serial.counters.intersections
        assert batched.n_transactions == 60
        assert batched.support_of(["a", "b"]) == serial.support_of(["a", "b"])

    def test_empty_batch(self):
        miner = IncrementalMiner()
        miner.extend([])
        assert miner.n_transactions == 0
        assert miner.generation == 0  # no-op must not invalidate

"""Ablation — the data-set regime decides the winner (Sections 1 and 5).

On standard market-basket data (few items, very many transactions) the
intersection approach is *not* competitive: "the more transactions
there are, the more work an intersection approach has to do".  This
bench shows the tables turning relative to the gene-expression
exhibits.
"""

import pytest

from conftest import run_and_check

SMIN = 150

ALGORITHMS = ("fpgrowth", "lcm", "eclat", "sam", "ista")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_market_basket_regime(benchmark, baskets_db, algorithm):
    result = run_and_check(
        benchmark, baskets_db, SMIN, algorithm, "ablation-regime"
    )
    assert len(result) > 0


@pytest.mark.parametrize(
    "label, options",
    [
        ("pure-rows", {"switch_ratio": float("inf")}),
        ("adaptive", {}),
        ("pure-columns", {"switch_ratio": 0.0, "min_rows_to_switch": 1}),
    ],
)
def test_cobbler_switch_policy(benchmark, thrombin_db, label, options):
    """Cobbler's hand-over point, swept from pure Carpenter to pure
    column enumeration on the thrombin workload."""
    result = run_and_check(
        benchmark, thrombin_db, 52, "cobbler", "ablation-cobbler", **options
    )
    assert len(result) > 0

"""Table 1 — the matrix representation for table-based Carpenter.

Regenerates the published example matrix exactly and measures matrix
construction at gene-expression scale (the one-off cost the table-based
variant pays up front).
"""

from repro.data.matrix import build_matrix, example_database
from repro.datasets import yeast_compendium

#: The matrix printed in Table 1 of the paper.
TABLE_1 = [
    [4, 5, 5, 0, 0],
    [3, 0, 0, 6, 3],
    [0, 4, 4, 5, 0],
    [2, 3, 3, 4, 0],
    [0, 2, 2, 0, 0],
    [1, 1, 0, 3, 0],
    [0, 0, 0, 2, 2],
    [0, 0, 1, 1, 1],
]


def test_table1_exact_reproduction(benchmark):
    """The example database's matrix equals the published Table 1."""
    db = example_database()
    matrix = benchmark(build_matrix, db)
    assert matrix.tolist() == TABLE_1


def test_matrix_construction_at_scale(benchmark):
    """Matrix construction cost on a compendium-sized database."""
    db = yeast_compendium(n_genes=2000, n_conditions=150)
    matrix = benchmark.pedantic(build_matrix, args=(db,), rounds=1, iterations=1)
    assert matrix.shape == (db.n_transactions, db.n_items)

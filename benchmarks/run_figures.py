#!/usr/bin/env python3
"""Run the full paper-scale sweeps behind every figure of EXPERIMENTS.md.

Usage::

    python benchmarks/run_figures.py                  # all exhibits
    python benchmarks/run_figures.py fig5-yeast       # one exhibit
    python benchmarks/run_figures.py --scale 0.3      # quick pass
    python benchmarks/run_figures.py --markdown out.md

Each sweep prints three paper-style tables: wall-clock seconds,
log10(seconds) (the figures' vertical axis), and the intersection
operation counter (the language-independent work measure).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.figures import FIGURES, run_figure
from repro.bench.plotting import render_figure


def render(name: str, scale: float, repeats: int, time_limit: Optional[float], sweeps=None) -> str:
    spec = FIGURES[name]
    started = time.perf_counter()
    sweep = run_figure(name, scale=scale, repeats=repeats, time_limit=time_limit)
    elapsed = time.perf_counter() - started
    if sweeps is not None:
        sweeps[name] = sweep.as_dict()
    lines = [
        f"## {spec.paper_exhibit} — {name}",
        "",
        spec.description,
        "",
        f"Expected shape (paper): {spec.expected_shape}",
        "",
        f"Sweep completed in {elapsed:.1f}s at scale {scale} "
        f"('--' marks cells past the {sweep and spec.time_limit if time_limit is None else time_limit}s time limit, "
        "mirroring where the paper's curves end).",
        "",
        "Wall-clock seconds:",
        "```",
        sweep.format_table("seconds"),
        "```",
        "log10(time/seconds) — the figures' vertical axis:",
        "```",
        sweep.format_table("log"),
        "```",
        "Closed sets found:",
        "```",
        sweep.format_table("closed"),
        "```",
        "Set intersections performed (language-independent work):",
        "```",
        sweep.format_table("intersections"),
        "```",
        "The reproduced figure (log10 seconds vs minimum support):",
        "```",
        render_figure(sweep),
        "```",
        "",
    ]
    winner = sweep.winner(min(sweep.smin_values))
    if winner:
        lines.insert(-1, f"Fastest at the lowest support: **{winner}**.")
        lines.insert(-1, "")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figures", nargs="*", help="exhibit names (default: all)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--time-limit", type=float, default=None)
    parser.add_argument("--markdown", help="also write the report to this file")
    parser.add_argument(
        "--json",
        help="also write the raw sweeps (timings + counter snapshots) "
        "to this file as JSON",
    )
    args = parser.parse_args(argv)

    names = args.figures or sorted(FIGURES)
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}; available: {sorted(FIGURES)}")

    sections = []
    sweeps = {} if args.json else None
    for name in names:
        print(f"=== running {name} (scale {args.scale}) ===", file=sys.stderr)
        section = render(name, args.scale, args.repeats, args.time_limit, sweeps)
        print(section)
        sections.append(section)

    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write("\n".join(sections))
        print(f"wrote {args.markdown}", file=sys.stderr)
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(sweeps, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

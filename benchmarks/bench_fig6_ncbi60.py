"""Figure 6 — runtime on the NCBI60 cell-line panel workload.

Paper: only the intersection miners appear (FP-close and LCM3 crashed
on this data); table-based Carpenter and IsTa run on par, the
list-based variant is slower by a roughly constant factor.
"""

import pytest

from conftest import run_and_check

SMIN = 52

ALGORITHMS = ("ista", "carpenter-table", "carpenter-lists")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6_ncbi60(benchmark, ncbi60_db, algorithm):
    result = run_and_check(benchmark, ncbi60_db, SMIN, algorithm, "fig6-ncbi60")
    assert len(result) > 0

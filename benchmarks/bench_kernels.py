"""Kernel backend microbenchmarks with a regression gate.

Times the batched set-algebra primitives of every registered
:mod:`repro.kernels` backend on the dense gene-expression-style fixture
(wide transactions, >= 1k items — the regime the paper's intersection
miners target) and either records the result as a baseline or compares
a fresh run against a committed one.

Usage::

    # Record (refresh) the committed baseline: one fresh session, then
    # fold a few more so the file keeps per-case session minima — the
    # floor a tight-tolerance smoke gate needs.  --floor commits hard
    # per-case promises into the baseline's "floors" mapping; every
    # later --compare enforces them automatically
    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --record benchmarks/BENCH_kernels.json --repeats 12 --runs 3 \
        --floor intersection_family@native:3.0
    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --record benchmarks/BENCH_kernels.json --repeats 12 --runs 3 --fold  # x3

    # CI gate: compare a fresh run against the baseline by speedup
    # ratio (machine-independent) with a generous noise tolerance
    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --compare benchmarks/BENCH_kernels.json --tolerance 0.5 \
        --require-speedup 2.0 --out fresh.json

    # Hard per-primitive promises, independent of the baseline.  A bare
    # NAME binds every backend's ratio of that case; NAME@BACKEND binds
    # exactly one backend's ratio (and is skipped when the install does
    # not carry that backend, e.g. native without a compiler)
    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --compare benchmarks/BENCH_kernels.json \
        --require-case intersect_many@native:3.0 --require-case intersect_count_many:1.5

    # Fast smoke pass (same fixture, fewer repeats).  With --quick,
    # --require-case also *restricts* the timed cases to the named
    # subset, so a targeted smoke gate does not pay for the full suite
    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --compare benchmarks/BENCH_kernels.json --quick --tolerance 0.1

Exit codes: 0 = pass/recorded, 1 = regression detected.

``--mode speedup`` (default) gates on the per-backend-over-bitint
speedup ratios, which survive machine changes; ``--mode seconds``
gates on absolute per-case times and is only meaningful on the machine
that recorded the baseline.

Besides the synthetic dense fixture, the suite times one end-to-end
case, ``ista_descent``: IsTa's prefix-tree repository built over the
yeast gate fixture (``benchmarks/fixtures/yeast_gate.fimi`` at
``smin=5``).  Its ``bitint`` row is the node-at-a-time *recursive*
descent and the other backend rows run the level-batched bounded
descent, so the ``speedup:`` ratios measure batched-over-recursive —
the gate that keeps the batched restructuring an actual win.

One *derived* case, ``intersection_family``, carries per-backend
geometric means over the three ``intersect_*`` member cases.  It is a
regular case to the gate machinery — tolerance bands, ``@BACKEND``
floors and backend-absent skips all apply — and the headline native
promise lives there: a committed ``intersection_family@native`` floor
in the baseline's ``"floors"`` mapping.  In ``--quick`` restrictions
the family name expands to its members.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import compare_kernel_baselines, run_kernel_microbench

#: Derived gate cases: geometric mean of the member cases' speedup
#: ratios, per backend.  The intersection family is the paper's hot
#: path — the family geomean is the headline promise the native
#: backend commits to (a committed ``intersection_family@native``
#: floor in BENCH_kernels.json), while the per-member floors keep any
#: single primitive from silently regressing behind a strong sibling.
FAMILY_CASES = {
    "intersection_family": (
        "intersect_many",
        "intersect_count_many",
        "intersect_count_many_bounded",
    ),
}


def add_family_cases(record: dict) -> None:
    """Attach the derived family-geomean cases to a microbench record.

    A family case carries only ``speedup:<backend>`` keys (there is no
    meaningful combined wall-clock), each the geometric mean of the
    member cases' ratios for that backend — present only when every
    member was timed for the backend, so a restricted run that skips a
    member does not publish a half-family geomean.
    """
    import math

    for family, members in FAMILY_CASES.items():
        rows = [record["cases"].get(member) for member in members]
        if any(row is None for row in rows):
            record["cases"].pop(family, None)
            continue
        entry = {}
        for name in record.get("backends", []):
            key = f"speedup:{name}"
            ratios = [row.get(key) for row in rows]
            if all(ratio is not None and ratio > 0 for ratio in ratios):
                entry[key] = math.exp(
                    sum(math.log(ratio) for ratio in ratios) / len(ratios)
                )
        if entry:
            record["cases"][family] = entry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--record", metavar="FILE", help="run the suite and write the baseline here"
    )
    parser.add_argument(
        "--fold",
        action="store_true",
        help="with --record, merge into an existing baseline by pointwise "
        "minimum instead of overwriting — repeat across a few sessions to "
        "record the floor the gate statistic has demonstrably cleared in "
        "every session (what a tight --tolerance needs)",
    )
    action.add_argument(
        "--compare", metavar="FILE", help="run the suite and gate against this baseline"
    )
    parser.add_argument(
        "--mode",
        choices=("speedup", "seconds"),
        default="speedup",
        help="comparison mode (default: speedup — machine-independent)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="relative regression tolerance (default: 0.5 = 50%%, noise-safe)",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="additionally require a fresh geomean speedup of at least FACTOR",
    )
    parser.add_argument(
        "--require-case",
        action="append",
        default=[],
        metavar="NAME[@BACKEND]:FACTOR",
        help=(
            "require fresh speedup ratios of case NAME to be at least "
            "FACTOR (repeatable; independent of the baseline values). "
            "NAME alone binds every backend's ratio; NAME@BACKEND binds "
            "only that backend's, and is skipped when the install lacks "
            "the backend. With --quick, the named cases also restrict "
            "which cases get timed at all"
        ),
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="NAME[@BACKEND]:FACTOR",
        help=(
            "with --record: commit this floor into the baseline's "
            "'floors' mapping (repeatable; same spec syntax as "
            "--require-case). Committed floors are then enforced "
            "automatically by every --compare against that baseline. "
            "With --fold, newly passed floors merge over the ones "
            "already committed"
        ),
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the fresh measurements here"
    )
    parser.add_argument("--rows", type=int, default=256, help="fixture transactions")
    parser.add_argument("--bits", type=int, default=1536, help="fixture items")
    parser.add_argument(
        "--density", type=float, default=0.5, help="fixture density (default 0.5)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--runs",
        type=int,
        default=1,
        help="full-suite passes to aggregate: the reported measurement "
        "keeps per-case minima (both seconds and speedup ratios), a "
        "conservative envelope that ambient machine load can only "
        "shrink, never inflate — use for recording baselines",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: same fixture at batched best-of-12 — stable "
        "speedup ratios for a tight tolerance at a fraction of the "
        "best-of-30 recording cost",
    )
    return parser


def merge_runs(runs) -> dict:
    """Fold several microbench passes into a peak-vs-peak envelope.

    Per case each backend keeps its minimum (fastest demonstrated)
    seconds, and the speedup ratios are *recomputed* from those merged
    minima.  A ratio of per-backend peaks converges to a machine
    constant as passes accumulate — unlike a single pass's ratio, where
    one noisy side skews the quotient — which is what lets the CI smoke
    gate hold a tight tolerance.  The geomean is recomputed to match.
    """
    import math

    merged = runs[0]
    backends = merged.get("backends", [])
    for fresh in runs[1:]:
        for case, timings in fresh["cases"].items():
            into = merged["cases"].setdefault(case, {})
            for key, value in timings.items():
                into[key] = min(into.get(key, value), value)
    for timings in merged["cases"].values():
        reference = timings.get("bitint")
        if reference:
            for name in backends:
                if name != "bitint" and timings.get(name):
                    timings[f"speedup:{name}"] = reference / timings[name]
    speedups = [
        value
        for case, timings in merged["cases"].items()
        if case not in FAMILY_CASES
        for key, value in timings.items()
        if key.startswith("speedup:") and value > 0
    ]
    merged["summary"]["geomean_speedup"] = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else None
    )
    merged["fixture"]["runs"] = len(runs)
    add_family_cases(merged)
    return merged


def fold_baselines(previous: dict, fresh: dict) -> dict:
    """Pointwise-minimum fold of a fresh session into a prior baseline.

    Unlike :func:`merge_runs`, the speedup ratios themselves take the
    minimum rather than being recomputed from merged seconds: folding
    across sessions must keep the worst ratio any *session* produced
    (the floor the gate statistic demonstrably clears every time), not
    the best-vs-best ratio across all of them, which only ever climbs.
    """
    import math

    for case, timings in fresh["cases"].items():
        into = previous["cases"].setdefault(case, {})
        for key, value in timings.items():
            into[key] = min(into.get(key, value), value)
    speedups = [
        value
        for case, timings in previous["cases"].items()
        if case not in FAMILY_CASES
        for key, value in timings.items()
        if key.startswith("speedup:") and value > 0
    ]
    previous["summary"]["geomean_speedup"] = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else None
    )
    previous["fixture"]["sessions"] = previous["fixture"].get("sessions", 1) + 1
    return previous


def parse_case_floors(specs, flag="--require-case") -> dict:
    """``NAME[@BACKEND]:FACTOR`` argument strings -> ``{spec: factor}``.

    The ``NAME`` / ``NAME@BACKEND`` part is kept verbatim as the key;
    :func:`repro.bench.compare_kernel_baselines` interprets the
    optional ``@BACKEND`` qualifier.
    """
    floors = {}
    for spec in specs:
        name, separator, factor = spec.partition(":")
        if not separator or not name or name.endswith("@"):
            raise SystemExit(f"{flag} expects NAME[@BACKEND]:FACTOR, got {spec!r}")
        try:
            floors[name] = float(factor)
        except ValueError:
            raise SystemExit(f"{flag} factor must be a number, got {spec!r}")
    return floors


def descent_fixture_masks() -> list:
    """Prepared yeast transactions for the ``ista_descent`` case.

    The same fixture and threshold as the observability invariants gate
    (``benchmarks/fixtures/yeast_gate.fimi`` at ``smin=5``), recoded
    and ordered exactly as :func:`repro.core.ista.mine_ista` would feed
    them to the repository — so the timed descent matches the mining
    hot loop, not an arbitrary mask stream.
    """
    import os

    from repro.common import prepare_for_mining
    from repro.data.io import read_fimi

    path = os.path.join(os.path.dirname(__file__), "fixtures", "yeast_gate.fimi")
    db = read_fimi(path)
    prepared, _ = prepare_for_mining(db, 5)
    return list(prepared.transactions)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.compare and args.floor:
        raise SystemExit(
            "--floor commits floors at --record time; with --compare the "
            "baseline's committed floors already apply (use --require-case "
            "for one-off extras)"
        )
    case_floors = parse_case_floors(args.require_case)
    repeats = 12 if args.quick else args.repeats
    if args.runs < 1:
        raise SystemExit(f"--runs must be positive, got {args.runs}")
    # --quick + --require-case is the targeted smoke shape: time only
    # the cases the gate actually binds instead of the whole suite.  A
    # derived family name expands to its member cases (the family
    # geomean then re-emerges from the timed members).
    cases = None
    if args.quick and case_floors:
        named = {spec.partition("@")[0] for spec in case_floors}
        cases = sorted(
            {member for name in named for member in FAMILY_CASES.get(name, (name,))}
        )
    need_descent = cases is None or "ista_descent" in cases
    descent_masks = descent_fixture_masks() if need_descent else None
    try:
        fresh = merge_runs(
            [
                run_kernel_microbench(
                    n_rows=args.rows,
                    n_bits=args.bits,
                    density=args.density,
                    repeats=repeats,
                    cases=cases,
                    descent_masks=descent_masks,
                )
                for _ in range(args.runs)
            ]
        )
    except ValueError as exc:
        raise SystemExit(f"--require-case: {exc}")
    geomean = fresh["summary"]["geomean_speedup"]
    print(
        f"# fixture: {args.rows} rows x {args.bits} bits, "
        f"density {args.density}, best of {repeats}"
        + (" (quick)" if args.quick else "")
    )
    for case, timings in sorted(fresh["cases"].items()):
        parts = [
            f"{name}={timings[name] * 1e3:.3f}ms"
            for name in fresh["backends"]
            if name in timings
        ]
        parts += [
            f"{key.split(':', 1)[1]} speedup={value:.2f}x"
            for key, value in timings.items()
            if key.startswith("speedup:")
        ]
        print(f"{case:22s} {'  '.join(parts)}")
    if geomean is not None:
        print(f"# geomean speedup over bitint: {geomean:.2f}x")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.record:
        import os

        committed_floors = parse_case_floors(args.floor, flag="--floor")
        if args.fold and os.path.exists(args.record):
            with open(args.record, "r", encoding="utf-8") as handle:
                previous = json.load(handle)
            committed_floors = {**previous.get("floors", {}), **committed_floors}
            fresh = fold_baselines(previous, fresh)
        if committed_floors:
            fresh["floors"] = committed_floors
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# baseline written to {args.record}")
        return 0

    with open(args.compare, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare_kernel_baselines(
        baseline,
        fresh,
        mode=args.mode,
        tolerance=args.tolerance,
        require_speedup=args.require_speedup,
        per_case_floors=case_floors,
    )
    if failures:
        print(f"# {len(failures)} regression(s) against {args.compare}:")
        for failure in failures:
            print(f"REGRESSION {failure}")
        return 1
    print(f"# no regressions against {args.compare} (mode={args.mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Kernel backend microbenchmarks with a regression gate.

Times the batched set-algebra primitives of every registered
:mod:`repro.kernels` backend on the dense gene-expression-style fixture
(wide transactions, >= 1k items — the regime the paper's intersection
miners target) and either records the result as a baseline or compares
a fresh run against a committed one.

Usage::

    # Record (refresh) the committed baseline
    PYTHONPATH=src python benchmarks/bench_kernels.py --record benchmarks/BENCH_kernels.json

    # CI gate: compare a fresh run against the baseline by speedup
    # ratio (machine-independent) with a generous noise tolerance
    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --compare benchmarks/BENCH_kernels.json --tolerance 0.5 \
        --require-speedup 2.0 --out fresh.json

Exit codes: 0 = pass/recorded, 1 = regression detected.

``--mode speedup`` (default) gates on the numpy-over-bitint speedup
ratios, which survive machine changes; ``--mode seconds`` gates on
absolute per-case times and is only meaningful on the machine that
recorded the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import compare_kernel_baselines, run_kernel_microbench


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--record", metavar="FILE", help="run the suite and write the baseline here"
    )
    action.add_argument(
        "--compare", metavar="FILE", help="run the suite and gate against this baseline"
    )
    parser.add_argument(
        "--mode",
        choices=("speedup", "seconds"),
        default="speedup",
        help="comparison mode (default: speedup — machine-independent)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="relative regression tolerance (default: 0.5 = 50%%, noise-safe)",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="additionally require a fresh geomean speedup of at least FACTOR",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the fresh measurements here"
    )
    parser.add_argument("--rows", type=int, default=256, help="fixture transactions")
    parser.add_argument("--bits", type=int, default=1536, help="fixture items")
    parser.add_argument(
        "--density", type=float, default=0.5, help="fixture density (default 0.5)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    fresh = run_kernel_microbench(
        n_rows=args.rows,
        n_bits=args.bits,
        density=args.density,
        repeats=args.repeats,
    )
    geomean = fresh["summary"]["geomean_speedup"]
    print(
        f"# fixture: {args.rows} rows x {args.bits} bits, "
        f"density {args.density}, best of {args.repeats}"
    )
    for case, timings in sorted(fresh["cases"].items()):
        parts = [
            f"{name}={timings[name] * 1e3:.3f}ms"
            for name in fresh["backends"]
            if name in timings
        ]
        parts += [
            f"{key.split(':', 1)[1]} speedup={value:.2f}x"
            for key, value in timings.items()
            if key.startswith("speedup:")
        ]
        print(f"{case:22s} {'  '.join(parts)}")
    if geomean is not None:
        print(f"# geomean speedup over bitint: {geomean:.2f}x")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.record:
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# baseline written to {args.record}")
        return 0

    with open(args.compare, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare_kernel_baselines(
        baseline,
        fresh,
        mode=args.mode,
        tolerance=args.tolerance,
        require_speedup=args.require_speedup,
    )
    if failures:
        print(f"# {len(failures)} regression(s) against {args.compare}:")
        for failure in failures:
            print(f"REGRESSION {failure}")
        return 1
    print(f"# no regressions against {args.compare} (mode={args.mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

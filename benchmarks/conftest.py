"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file regenerates one exhibit of the paper (see
DESIGN.md section 4).  The pytest-benchmark runs use workload sizes
that keep the whole suite in the minutes range; the *full* paper-scale
sweeps — the ones EXPERIMENTS.md reports — are produced by::

    python benchmarks/run_figures.py            # all figures
    python -m repro.cli bench fig5-yeast        # one figure

Every benchmark asserts the mined closed-set count against the other
algorithms of the same exhibit, so a timing run is also a correctness
cross-check.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.datasets import (
    ncbi60_like,
    quest_baskets,
    thrombin_like,
    webview_transposed,
    yeast_compendium,
)
from repro.mining import mine

# Closed-set counts observed for each (fixture, smin); every benchmark
# checks its own result against this shared record so that all
# algorithms of one exhibit provably mined the same family.
_observed: Dict[Tuple[str, int], int] = {}


@pytest.fixture(scope="session")
def yeast_db():
    """Scaled yeast compendium (Figure 5 workload)."""
    return yeast_compendium(n_genes=3000, n_conditions=200)


@pytest.fixture(scope="session")
def ncbi60_db():
    """NCBI60-shaped cell-line panel (Figure 6 workload)."""
    return ncbi60_like()


@pytest.fixture(scope="session")
def thrombin_db():
    """Thrombin-shaped sparse feature data (Figure 7 workload)."""
    return thrombin_like(n_features=2600)


@pytest.fixture(scope="session")
def webview_db():
    """Transposed click-stream data (Figure 8 workload)."""
    return webview_transposed()


@pytest.fixture(scope="session")
def baskets_db():
    """Market-basket data (regime ablation)."""
    return quest_baskets(n_transactions=1500, n_items=80)


def run_and_check(benchmark, db, smin, algorithm, dataset_key, **options):
    """Benchmark one miner and cross-check its result size."""
    result = benchmark.pedantic(
        mine, args=(db, smin), kwargs={"algorithm": algorithm, **options},
        rounds=1, iterations=1,
    )
    key = (dataset_key, smin)
    previous = _observed.setdefault(key, len(result))
    assert len(result) == previous, (
        f"{algorithm} found {len(result)} closed sets on {dataset_key} at "
        f"smin={smin}, but another algorithm found {previous}"
    )
    return result

"""Serve-daemon gate: request latency and throughput over real HTTP.

``bench_serving.py`` gates the warm-start and memoization ratios of the
query surface itself; this gate covers the daemon wrapped around it.
A :class:`~repro.serving.server.QueryServer` is started in-process on
an ephemeral loopback port over a store built from the committed yeast
gate fixture, then hammered with sequential HTTP requests the way the
CI smoke step's ``curl`` loop would be.  Recorded per endpoint:

* **p50 / p99 latency** — milliseconds per request, connection setup
  through full-body read (one connection per request, exactly the
  daemon's ``Connection: close`` contract);
* **qps** — requests per second over the measured window.

Absolute wall clock over loopback is noisier than the ratio gates, so
the hard floors are deliberately loose (the daemon answering memoized
queries should clear them by an order of magnitude) and the baseline
band is one-sided and wide: faster always passes, only a collapse
fails.  Before any timing is trusted the gate re-checks exactness: the
served ``closed_sets`` body must equal the in-process query verbatim.

Usage::

    # Record (refresh) the committed baseline
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --record benchmarks/BENCH_serve.json

    # CI gate
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --compare benchmarks/BENCH_serve.json --tolerance 0.5 \
        --out bench-serve-fresh.json

Exit codes: 0 = pass/recorded, 1 = floor missed or drift detected.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import tempfile
import threading
import time
import urllib.request

from repro.data.io import read_fimi
from repro.serving import QueryServer, StreamingMiner, query_lines

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "yeast_gate.fimi")
SMIN = 5
TOP_K = 20
WARMUP_REQUESTS = 20
MEASURE_REQUESTS = 300
#: Hard floors: a stdlib asyncio daemon answering memoized queries over
#: loopback clears these by >= 10x on any plausible runner.
QPS_FLOOR = 25.0
P99_CEILING_MS = 250.0

ENDPOINTS = {
    "top_k": f"/top_k?k={TOP_K}&smin={SMIN}",
    "closed_sets": f"/closed_sets?smin={SMIN}",
    "healthz": "/healthz",
}


def _percentile(samples: list, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _Daemon:
    """QueryServer on a private event loop thread, bound to port 0."""

    def __init__(self, store: str):
        self.server = QueryServer(store, port=0, workers=2, poll_interval=30.0)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )

    def __enter__(self):
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result(timeout=60)
        return self

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        ).result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def get(self, path: str) -> bytes:
        url = f"http://127.0.0.1:{self.server.port}{path}"
        with urllib.request.urlopen(url, timeout=30) as response:
            if response.status != 200:
                raise AssertionError(f"GET {path} -> {response.status}")
            return response.read()


def measure() -> dict:
    """Serve the fixture store and time the endpoint request loops."""
    db = read_fimi(FIXTURE)
    rows = [list(db.decode(mask)) for mask in db.transactions]

    workdir = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        store = os.path.join(workdir, "store")
        writer = StreamingMiner.open(store, batch_records=32)
        for row in rows:
            writer.ingest(row)
        writer.close()

        record = {
            "fixture": os.path.relpath(FIXTURE, os.path.dirname(__file__)),
            "smin": SMIN,
            "k": TOP_K,
            "transactions": len(rows),
            "requests_per_endpoint": MEASURE_REQUESTS,
        }
        with _Daemon(store) as daemon:
            # Exactness before timing: the served body's lines must be
            # the in-process answer verbatim.
            payload = json.loads(daemon.get(ENDPOINTS["closed_sets"]))
            expected = list(
                query_lines(daemon.server._hot.miner, "closed_sets", smin=SMIN)
            )
            if payload["lines"] != expected:
                raise AssertionError(
                    "served closed_sets diverged from the in-process "
                    f"query: {len(payload['lines'])} vs {len(expected)} lines"
                )
            record["n_closed"] = len(expected)

            for name, path in ENDPOINTS.items():
                for _ in range(WARMUP_REQUESTS):
                    daemon.get(path)
                latencies = []
                window = time.perf_counter()
                for _ in range(MEASURE_REQUESTS):
                    start = time.perf_counter()
                    daemon.get(path)
                    latencies.append(time.perf_counter() - start)
                window = time.perf_counter() - window
                record[name] = {
                    "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
                    "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
                    "qps": round(MEASURE_REQUESTS / window, 1),
                }
        return record
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Failure messages (empty = gate passes)."""
    failures = []
    if fresh["n_closed"] != baseline["n_closed"]:
        failures.append(
            f"n_closed: {fresh['n_closed']} != baseline "
            f"{baseline['n_closed']} (result family changed)"
        )
    for name in ENDPOINTS:
        row, base = fresh[name], baseline.get(name, {})
        if row["qps"] < QPS_FLOOR:
            failures.append(
                f"{name}.qps: {row['qps']} below the hard floor {QPS_FLOOR}"
            )
        if row["p99_ms"] > P99_CEILING_MS:
            failures.append(
                f"{name}.p99_ms: {row['p99_ms']} above the hard ceiling "
                f"{P99_CEILING_MS}"
            )
        if base:
            allowed = base["qps"] * (1.0 - tolerance)
            if row["qps"] < allowed:
                failures.append(
                    f"{name}.qps: {row['qps']} collapsed below baseline "
                    f"{base['qps']} - {tolerance:.0%} = {allowed:.1f}"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--record", metavar="FILE", help="run the load test and write the baseline"
    )
    action.add_argument(
        "--compare", metavar="FILE", help="run the load test and compare"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="one-sided qps regression tolerance (default 0.5 = 50%%)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the fresh record here"
    )
    args = parser.parse_args(argv)

    fresh = measure()
    print(
        f"# serve gate on {fresh['fixture']} ({fresh['transactions']} "
        f"transactions, smin={SMIN}, {fresh['n_closed']} closed sets, "
        f"{MEASURE_REQUESTS} requests/endpoint)"
    )
    for name in ENDPOINTS:
        row = fresh[name]
        print(
            f"{name:12s} p50 {row['p50_ms']:.2f} ms   "
            f"p99 {row['p99_ms']:.2f} ms   {row['qps']:.0f} qps"
        )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.record:
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# baseline written to {args.record}")
        return 0

    with open(args.compare, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"# {len(failures)} serve gate failure(s) against {args.compare}:")
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(
        f"# serve latency/throughput above the floors and within "
        f"-{args.tolerance:.0%} of {args.compare}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

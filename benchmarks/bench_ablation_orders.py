"""Ablation — item and transaction orders (Section 3.4).

The paper: "it is usually most efficient to assign the item codes
w.r.t. ascending frequency ... and to process the transactions in the
order of increasing size"; the reverse transaction order makes the
prefix tree large early and slows every later transaction down.
"""

import pytest

from conftest import run_and_check

SMIN = 10


@pytest.mark.parametrize(
    "transaction_order",
    ("size-ascending", "size-descending", "identity", "random"),
)
def test_transaction_order(benchmark, yeast_db, transaction_order):
    result = run_and_check(
        benchmark,
        yeast_db,
        SMIN,
        "ista",
        "ablation-transaction-order",
        transaction_order=transaction_order,
    )
    assert len(result) > 0


@pytest.mark.parametrize(
    "item_order",
    ("frequency-ascending", "frequency-descending", "identity"),
)
def test_item_order(benchmark, yeast_db, item_order):
    result = run_and_check(
        benchmark,
        yeast_db,
        SMIN,
        "ista",
        "ablation-item-order",
        item_order=item_order,
    )
    assert len(result) > 0

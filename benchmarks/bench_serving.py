"""Serving-path gate: warm-start and memoization ratios on a fixture.

The serving layer's reason to exist is captured by two ratios on the
committed yeast-style fixture:

* **warm ratio** — loading a snapshot of the first 90% of the fixture,
  folding the remaining 10% in as one delta batch and querying the
  closed frequent sets must beat mining the full fixture cold by at
  least 10x;
* **memo ratio** — repeating a query against an unchanged repository
  must beat the first evaluation by at least 100x.

Both are gated as hard floors *and* against the committed baseline with
a one-sided tolerance (an improvement always passes, a regression
beyond the tolerance fails).  Ratios of two timings taken seconds apart
on the same machine are far more runner-stable than absolute wall
clock, and each side is measured best-of-N to shed scheduler noise;
the floors carry the absolute guarantee.

The gate also re-checks exactness: the warm-started family must equal
the cold-mined family set-for-set before any timing is trusted.

Usage::

    # Record (refresh) the committed baseline
    PYTHONPATH=src python benchmarks/bench_serving.py \
        --record benchmarks/BENCH_serving.json

    # CI gate
    PYTHONPATH=src python benchmarks/bench_serving.py \
        --compare benchmarks/BENCH_serving.json --tolerance 0.4 \
        --out bench-serving-fresh.json

Exit codes: 0 = pass/recorded, 1 = floor missed or drift detected.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.incremental import IncrementalMiner
from repro.data.database import TransactionDatabase
from repro.data.io import read_fimi
from repro.mining import mine
from repro.serving import dumps_snapshot, loads_snapshot

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "yeast_gate.fimi")
SMIN = 5
DELTA_FRACTION = 10  # delta = 1/10th of the fixture
WARM_FLOOR = 10.0
MEMO_FLOOR = 100.0
COLD_REPEATS = 3
WARM_REPEATS = 5
MEMO_QUERY_REPEATS = 2000


def measure() -> dict:
    """Time the cold, warm and memoized paths; returns the gate record."""
    db = read_fimi(FIXTURE)
    rows = [list(db.decode(mask)) for mask in db.transactions]
    split = len(rows) - len(rows) // DELTA_FRACTION
    base_rows, delta_rows = rows[:split], rows[split:]

    cold_times = []
    for _ in range(COLD_REPEATS):
        start = time.perf_counter()
        mine(db, 1, algorithm="ista")
        cold_times.append(time.perf_counter() - start)
    cold_s = min(cold_times)

    base = IncrementalMiner.from_database(
        TransactionDatabase.from_iterable(base_rows)
    )
    blob = dumps_snapshot(base)

    warm_times = []
    memo_first_times = []
    memo_repeat_times = []
    family = None
    for _ in range(WARM_REPEATS):
        start = time.perf_counter()
        warm = loads_snapshot(blob)
        warm.extend(delta_rows)
        family = warm.closed_sets(SMIN)
        warm_times.append(time.perf_counter() - start)
        # First evaluation versus memo hits, on the repository the warm
        # run just produced.
        warm.add(delta_rows[0])
        start = time.perf_counter()
        warm.closed_sets(SMIN)
        memo_first_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(MEMO_QUERY_REPEATS):
            warm.closed_sets(SMIN)
        memo_repeat_times.append(
            (time.perf_counter() - start) / MEMO_QUERY_REPEATS
        )
    warm_s = min(warm_times)
    memo_first_s = min(memo_first_times)
    memo_repeat_s = min(memo_repeat_times)

    # Exactness before timing is trusted: warm family == cold family.
    cold_family = mine(db, SMIN, algorithm="ista").as_frozensets()
    warm_family = {
        frozenset(labels): supp for labels, supp in family.items()
    }
    if warm_family != cold_family:
        raise AssertionError(
            "warm-started family diverged from the cold mine: "
            f"{len(warm_family)} vs {len(cold_family)} sets"
        )

    return {
        "fixture": os.path.relpath(FIXTURE, os.path.dirname(__file__)),
        "smin": SMIN,
        "base_transactions": len(base_rows),
        "delta_transactions": len(delta_rows),
        "snapshot_bytes": len(blob),
        "n_closed": len(cold_family),
        "cold_ms": round(cold_s * 1e3, 3),
        "warm_ms": round(warm_s * 1e3, 3),
        "memo_first_ms": round(memo_first_s * 1e3, 4),
        "memo_repeat_us": round(memo_repeat_s * 1e6, 4),
        "warm_ratio": round(cold_s / warm_s, 2),
        "memo_ratio": round(memo_first_s / memo_repeat_s, 1),
    }


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Failure messages (empty = gate passes)."""
    failures = []
    if fresh["n_closed"] != baseline["n_closed"]:
        failures.append(
            f"n_closed: {fresh['n_closed']} != baseline "
            f"{baseline['n_closed']} (result family changed)"
        )
    for name, floor in (("warm_ratio", WARM_FLOOR), ("memo_ratio", MEMO_FLOOR)):
        value = fresh[name]
        if value < floor:
            failures.append(f"{name}: {value} below the hard floor {floor}")
        allowed = baseline[name] * (1.0 - tolerance)
        if value < allowed:
            failures.append(
                f"{name}: {value} regressed below baseline {baseline[name]} "
                f"- {tolerance:.0%} = {allowed:.1f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--record", metavar="FILE", help="run the gate workload and write the baseline"
    )
    action.add_argument(
        "--compare", metavar="FILE", help="run the gate workload and compare"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.4,
        help="one-sided ratio regression tolerance (default 0.4 = 40%%)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the fresh record here"
    )
    args = parser.parse_args(argv)

    fresh = measure()
    print(
        f"# serving gate on {fresh['fixture']} "
        f"({fresh['base_transactions']}+{fresh['delta_transactions']} "
        f"transactions, smin={SMIN}, {fresh['n_closed']} closed sets)"
    )
    print(
        f"cold {fresh['cold_ms']:.1f} ms   warm {fresh['warm_ms']:.1f} ms   "
        f"warm_ratio {fresh['warm_ratio']}x (floor {WARM_FLOOR:.0f}x)"
    )
    print(
        f"first query {fresh['memo_first_ms']:.2f} ms   "
        f"memo hit {fresh['memo_repeat_us']:.2f} us   "
        f"memo_ratio {fresh['memo_ratio']}x (floor {MEMO_FLOOR:.0f}x)"
    )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.record:
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# baseline written to {args.record}")
        return 0

    with open(args.compare, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"# {len(failures)} serving gate failure(s) against {args.compare}:")
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(
        f"# serving ratios above their floors and within -{args.tolerance:.0%} "
        f"of {args.compare}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation — item elimination and perfect-extension pruning.

The paper's claims:

* IsTa's item elimination ("we improve on it by ...") keeps the
  repository small — without it mining the gene-expression workloads is
  hopeless at low support;
* Carpenter's item elimination "leads to a considerable speed-up";
* the perfect-extension analogue (skip the exclude branch when the
  intersection is unchanged) is what makes near-duplicate transactions
  cheap.
"""

import pytest

from conftest import run_and_check

# IsTa pruning on the thrombin workload: prune=False is much slower, so
# the comparison runs at a high support where both finish.
ISTA_SMIN = 48


@pytest.mark.parametrize(
    "label, options",
    [
        ("prune-on", {"prune": True}),
        ("prune-off", {"prune": False}),
        ("prune-every-txn", {"prune": True, "prune_interval": 1}),
    ],
)
def test_ista_item_elimination(benchmark, thrombin_db, label, options):
    result = run_and_check(
        benchmark, thrombin_db, ISTA_SMIN, "ista", "ablation-ista-prune", **options
    )
    assert len(result) > 0


CARPENTER_SMIN = 54


@pytest.mark.parametrize(
    "label, options",
    [
        ("elimination-on", {}),
        ("elimination-off", {"eliminate_items": False}),
    ],
)
def test_carpenter_item_elimination(benchmark, ncbi60_db, label, options):
    result = run_and_check(
        benchmark,
        ncbi60_db,
        CARPENTER_SMIN,
        "carpenter-table",
        "ablation-carpenter-elim",
        **options,
    )
    assert len(result) > 0


@pytest.mark.parametrize(
    "label, options",
    [
        ("pe-on", {}),
        ("pe-off", {"perfect_extension": False}),
    ],
)
def test_carpenter_perfect_extension(benchmark, webview_db, label, options):
    """On near-duplicate transactions the perfect-extension analogue is
    what keeps Carpenter affordable; measured on the webview workload
    where both settings finish (on the cell-line panel the pruned run
    is ~400x faster — too lopsided to time in one suite)."""
    result = run_and_check(
        benchmark,
        webview_db,
        6,
        "carpenter-table",
        "ablation-carpenter-pe",
        **options,
    )
    assert len(result) > 0

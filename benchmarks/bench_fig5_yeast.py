"""Figure 5 — runtime on the yeast compendium workload.

Paper: 300 transactions, close to 10000 items; below smin ≈ 20 the
enumeration miners diverge while IsTa stays flat, and neither Carpenter
variant can compete with IsTa.

This pytest-benchmark file measures one representative support on a
scaled workload (200 conditions x 3000 genes); the full sweep behind
EXPERIMENTS.md comes from ``python benchmarks/run_figures.py`` or
``python -m repro.cli bench fig5-yeast``.
"""

import pytest

from conftest import run_and_check

SMIN = 10

ALGORITHMS = ("ista", "carpenter-table", "carpenter-lists", "fpgrowth", "lcm", "eclat")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_yeast(benchmark, yeast_db, algorithm):
    result = run_and_check(benchmark, yeast_db, SMIN, algorithm, "fig5-yeast")
    assert len(result) > 0

"""Figure 8 — runtime on the transposed BMS-WebView-1 workload.

Paper: behaves like the yeast data — FP-growth and LCM competitive only
down to smin ≈ 11; IsTa clearly outperforms both Carpenter variants,
with table-based slightly ahead of list-based.
"""

import pytest

from conftest import run_and_check

SMIN = 4

ALGORITHMS = ("ista", "carpenter-table", "carpenter-lists", "fpgrowth", "lcm")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8_webview(benchmark, webview_db, algorithm):
    result = run_and_check(benchmark, webview_db, SMIN, algorithm, "fig8-webview")
    assert len(result) > 0

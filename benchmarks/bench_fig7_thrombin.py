"""Figure 7 — runtime on the thrombin subset workload.

Paper: 64 records over 139,351 binary features; LCM3 and FP-close are
competitive only down to smin ≈ 32-34; below, the intersection miners
take over, with table-based Carpenter and IsTa roughly on par.
"""

import pytest

from conftest import run_and_check

SMIN = 44

ALGORITHMS = ("ista", "fpgrowth", "lcm")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7_thrombin(benchmark, thrombin_db, algorithm):
    result = run_and_check(benchmark, thrombin_db, SMIN, algorithm, "fig7-thrombin")
    assert len(result) > 0


@pytest.mark.parametrize("algorithm", ("carpenter-table", "carpenter-lists"))
def test_fig7_thrombin_carpenter(benchmark, thrombin_db, algorithm):
    """Carpenter at the top of the sweep (it truncates below, as in the
    full-figure run where its curves end early)."""
    result = run_and_check(benchmark, thrombin_db, 52, algorithm, "fig7-thrombin")
    assert len(result) > 0

"""Streaming-ingest gate: recovery speed and sustained throughput.

The durable streaming layer's reason to exist is captured by one ratio
and one exactness check on the committed yeast-style fixture:

* **recovery ratio** — after a simulated crash (the store is abandoned
  with a folded snapshot plus an unfolded log tail), re-opening the
  store (load newest snapshot + replay the tail) and answering a
  closed-set query must beat cold-mining the same transactions by at
  least 5x.  This is the whole point of snapshot + WAL: recovery cost
  is proportional to the tail, not the history.
* **exactness** — the recovered engine's family must equal the cold
  mine's, set for set, before any timing is trusted.

Sustained ingest throughput (transactions/s through the full
log-fold-compact pipeline, ``fsync="batch"``) is recorded for trend
visibility but deliberately *not* gated as an absolute: wall-clock
throughput varies wildly across CI runners, while a same-process ratio
is stable.  The ratio is gated as a hard floor *and* against the
committed baseline with a one-sided tolerance (improvements always
pass).

Usage::

    # Record (refresh) the committed baseline
    PYTHONPATH=src python benchmarks/bench_streaming.py \
        --record benchmarks/BENCH_streaming.json

    # CI gate
    PYTHONPATH=src python benchmarks/bench_streaming.py \
        --compare benchmarks/BENCH_streaming.json --tolerance 0.5 \
        --out bench-streaming-fresh.json

Exit codes: 0 = pass/recorded, 1 = floor missed or drift detected.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time

from repro.core.incremental import IncrementalMiner
from repro.data.io import read_fimi
from repro.serving import StreamingMiner

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "yeast_gate.fimi")
SMIN = 5
TAIL_FRACTION = 10  # unfolded tail = 1/10th of the fixture
RECOVERY_FLOOR = 5.0
COLD_REPEATS = 3
RECOVERY_REPEATS = 5


def measure() -> dict:
    """Time cold mining vs crash recovery; returns the gate record."""
    db = read_fimi(FIXTURE)
    rows = [list(db.decode(mask)) for mask in db.transactions]
    split = len(rows) - len(rows) // TAIL_FRACTION

    workdir = tempfile.mkdtemp(prefix="bench_streaming_")
    try:
        store_dir = os.path.join(workdir, "store")

        # Sustained ingest through the full pipeline: WAL append +
        # micro-batch folds + compaction, batch fsync policy.
        start = time.perf_counter()
        store = StreamingMiner.open(
            store_dir,
            fsync="batch",
            batch_records=32,
            compact_segments=4,
            segment_max_bytes=1 << 16,
        )
        for row in rows[:split]:
            store.ingest(row)
        store.close()  # folds + compacts: snapshot now covers the prefix
        ingest_s = time.perf_counter() - start

        # Leave an unfolded tail in the log, then abandon the store the
        # way SIGKILL would: no fold, no compaction, no clean close.
        tail_store = StreamingMiner.open(store_dir, batch_records=10**9)
        for row in rows[split:]:
            tail_store.ingest(row)
        tail_store._wal.close()

        cold_times = []
        family_cold = None
        for _ in range(COLD_REPEATS):
            start = time.perf_counter()
            cold = IncrementalMiner()
            cold.extend(rows)
            family_cold = cold.closed_sets(SMIN)
            cold_times.append(time.perf_counter() - start)
        cold_s = min(cold_times)

        recovery_times = []
        family_recovered = None
        replayed = None
        for _ in range(RECOVERY_REPEATS):
            start = time.perf_counter()
            recovered = StreamingMiner.open(store_dir)
            family_recovered = recovered.closed_sets(SMIN)
            recovery_times.append(time.perf_counter() - start)
            replayed = recovered.recovery.replayed_records
            recovered._wal.close()  # keep the tail unfolded for the next lap
        recovery_s = min(recovery_times)

        if replayed != len(rows) - split:
            raise AssertionError(
                f"recovery replayed {replayed} records, expected "
                f"{len(rows) - split}"
            )
        if dict(family_recovered) != dict(family_cold):
            raise AssertionError(
                "recovered family diverged from the cold mine: "
                f"{len(family_recovered)} vs {len(family_cold)} sets"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "fixture": os.path.relpath(FIXTURE, os.path.dirname(__file__)),
        "smin": SMIN,
        "ingested_transactions": split,
        "tail_transactions": len(rows) - split,
        "n_closed": len(family_cold),
        "ingest_s": round(ingest_s, 3),
        "ingest_tps": round(split / ingest_s, 1),
        "cold_ms": round(cold_s * 1e3, 3),
        "recovery_ms": round(recovery_s * 1e3, 3),
        "recovery_ratio": round(cold_s / recovery_s, 2),
    }


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Failure messages (empty = gate passes)."""
    failures = []
    if fresh["n_closed"] != baseline["n_closed"]:
        failures.append(
            f"n_closed: {fresh['n_closed']} != baseline "
            f"{baseline['n_closed']} (result family changed)"
        )
    value = fresh["recovery_ratio"]
    if value < RECOVERY_FLOOR:
        failures.append(
            f"recovery_ratio: {value} below the hard floor {RECOVERY_FLOOR}"
        )
    allowed = baseline["recovery_ratio"] * (1.0 - tolerance)
    if value < allowed:
        failures.append(
            f"recovery_ratio: {value} regressed below baseline "
            f"{baseline['recovery_ratio']} - {tolerance:.0%} = {allowed:.1f}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--record", metavar="FILE", help="run the gate workload and write the baseline"
    )
    action.add_argument(
        "--compare", metavar="FILE", help="run the gate workload and compare"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="one-sided ratio regression tolerance (default 0.5 = 50%%)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the fresh record here"
    )
    args = parser.parse_args(argv)

    fresh = measure()
    print(
        f"# streaming gate on {fresh['fixture']} "
        f"({fresh['ingested_transactions']}+{fresh['tail_transactions']} "
        f"transactions, smin={SMIN}, {fresh['n_closed']} closed sets)"
    )
    print(
        f"ingest {fresh['ingest_s']:.2f} s ({fresh['ingest_tps']:.0f} txn/s, "
        f"informational)"
    )
    print(
        f"cold {fresh['cold_ms']:.1f} ms   recovery {fresh['recovery_ms']:.1f} ms   "
        f"recovery_ratio {fresh['recovery_ratio']}x (floor {RECOVERY_FLOOR:.0f}x)"
    )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.record:
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# baseline written to {args.record}")
        return 0

    with open(args.compare, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"# {len(failures)} streaming gate failure(s) against {args.compare}:")
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(
        f"# recovery ratio above its floor and within -{args.tolerance:.0%} "
        f"of {args.compare}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation — prefix tree repository vs flat structure.

Two of the paper's claims about repositories:

* IsTa's prefix tree vs the flat structure of Mielikäinen [14]
  ("often exceeding a factor of 100" in C).  In Python the flat
  repository rides on C-speed big-integer intersections, so wall-clock
  is closer than in the paper — the *operation counts* (captured by the
  harness runs) retain the paper's gap.
* Carpenter's backward check: prefix-tree repository vs hash set.
"""

import pytest

from conftest import run_and_check

SMIN = 10


@pytest.mark.parametrize(
    "label, algorithm, options",
    [
        ("ista-prefix-tree", "ista", {}),
        ("cumulative-flat", "cumulative-flat", {}),
        ("cumulative-flat-pruned", "cumulative-flat", {"prune": True}),
    ],
)
def test_repository_structure(benchmark, yeast_db, label, algorithm, options):
    result = run_and_check(
        benchmark, yeast_db, SMIN, algorithm, "ablation-repository", **options
    )
    assert len(result) > 0


@pytest.mark.parametrize("repository_kind", ("prefix-tree", "hash"))
def test_carpenter_repository_backend(benchmark, webview_db, repository_kind):
    result = run_and_check(
        benchmark,
        webview_db,
        4,
        "carpenter-table",
        "ablation-carpenter-repo",
        repository_kind=repository_kind,
    )
    assert len(result) > 0

"""Observability invariant gate: cost-model counters on a fixed fixture.

Mines the committed yeast-style fixture with IsTa under an
observability probe and gates on the *cost model*, not on wall clock:
the intersection count (and the other ``ops.*`` counters) of a
deterministic serial run must stay within a small tolerance of the
committed baseline.  Wall-clock gates drown in runner noise; operation
counts are exact, so a drift here means the algorithm itself changed —
a different pruning schedule, a lost elimination, a double-counted
fallback — which is precisely what a reproduction repo must notice.

Usage::

    # Record (refresh) the committed baseline
    PYTHONPATH=src python benchmarks/bench_obs_invariants.py \
        --record benchmarks/BENCH_obs.json

    # CI gate: +-1% on every ops.* counter, exact result count
    PYTHONPATH=src python benchmarks/bench_obs_invariants.py \
        --compare benchmarks/BENCH_obs.json --tolerance 0.01 \
        --out obs-metrics-fresh.json

Exit codes: 0 = pass/recorded, 1 = drift detected.

The run is pinned to the ``bitint`` backend and serial execution: the
vectorised backend batches some checks differently and parallel shards
mine masked sub-databases, so their counts are legitimately different
(see docs/observability.md).  The fixture is a *committed file*, not a
generator call, so NumPy RNG stream changes cannot move the gate.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.data.io import read_fimi
from repro.mining import mine
from repro.obs import Probe

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "yeast_gate.fimi")
ALGORITHM = "ista"
SMIN = 5
BACKEND = "bitint"


def measure() -> dict:
    """One probed serial run; returns the gate record."""
    db = read_fimi(FIXTURE)
    probe = Probe()
    result = mine(db, SMIN, algorithm=ALGORITHM, backend=BACKEND, probe=probe)
    snapshot = probe.metrics.snapshot()
    return {
        "fixture": os.path.relpath(FIXTURE, os.path.dirname(__file__)),
        "algorithm": ALGORITHM,
        "smin": SMIN,
        "backend": BACKEND,
        "n_closed": len(result),
        "counters": {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("ops.")
        },
        "metrics": snapshot,
    }


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Drift messages (empty = gate passes)."""
    failures = []
    if fresh["n_closed"] != baseline["n_closed"]:
        failures.append(
            f"n_closed: {fresh['n_closed']} != baseline {baseline['n_closed']} "
            "(result family changed)"
        )
    for name, base_value in sorted(baseline.get("counters", {}).items()):
        fresh_value = fresh["counters"].get(name)
        if fresh_value is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        allowed = abs(base_value) * tolerance
        if abs(fresh_value - base_value) > allowed:
            failures.append(
                f"{name}: {fresh_value} drifted from baseline {base_value} "
                f"(tolerance +-{tolerance:.1%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--record", metavar="FILE", help="run the gate workload and write the baseline"
    )
    action.add_argument(
        "--compare", metavar="FILE", help="run the gate workload and compare"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="relative counter tolerance (default 0.01 = 1%%)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the fresh record (full metrics) here"
    )
    args = parser.parse_args(argv)

    fresh = measure()
    print(
        f"# {ALGORITHM} on {fresh['fixture']} at smin={SMIN} ({BACKEND}): "
        f"{fresh['n_closed']} closed sets"
    )
    for name, value in sorted(fresh["counters"].items()):
        print(f"{name:28s} {value}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.record:
        record = dict(fresh)
        del record["metrics"]  # the baseline pins counters, not histograms
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# baseline written to {args.record}")
        return 0

    with open(args.compare, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"# {len(failures)} invariant drift(s) against {args.compare}:")
        for failure in failures:
            print(f"DRIFT {failure}")
        return 1
    print(f"# all counters within +-{args.tolerance:.1%} of {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Observability invariant gate: cost-model counters on fixed fixtures.

Mines the committed yeast-style fixture under an observability probe
and gates on the *cost model*, not on wall clock: the intersection
count (and the other ``ops.*`` counters) of a deterministic serial run
must stay within a small tolerance of the committed baseline.
Wall-clock gates drown in runner noise; operation counts are exact, so
a drift here means the algorithm itself changed — a different pruning
schedule, a lost elimination, a double-counted fallback — which is
precisely what a reproduction repo must notice.

Three workloads are pinned:

* ``ista-bitint`` — IsTa, serial, reference backend.  The paper's
  algorithm on the paper's counters.
* ``eclat-closed-numpy`` — Eclat (closed target) on the vectorised
  backend, which drives the bounded kernel primitives and therefore
  the ``ops.kernel.early_aborts`` / ``ops.kernel.words_skipped`` pair.
  Those counters derive from the *returned* sentinel set (support
  below smin), which is data-dependent and implementation-independent,
  so they are exact across machines — the baseline pins them at
  tolerance 0 via its ``tolerances`` metadata.
* ``streaming-ingest`` — the full fixture through
  :class:`~repro.serving.StreamingMiner` (WAL + micro-batch folds +
  compaction + flight recorder) followed by a fixed query script.  On
  top of the ``ops.*`` counters this workload pins **histogram
  counts**: ``wal.append.seconds`` must count exactly one observation
  per ingested record, ``serve.fold.records`` one per fold, and the
  query/phase histograms one per scripted call.  Counts are exact
  (tolerance 0 via metadata, recorded as ``hist.<name>.count``);
  durations are never pinned — that is what the wall-clock benches and
  runner noise are for.

``--flight-dir DIR`` keeps the streaming workload's store — flight
recorder segments included — at ``DIR`` instead of a temp directory,
so a failing CI gate can upload the last seconds of telemetry as an
artifact next to the fresh metrics (``--out``).

Usage::

    # Record (refresh) the committed baseline
    PYTHONPATH=src python benchmarks/bench_obs_invariants.py \
        --record benchmarks/BENCH_obs.json

    # CI gate: +-1% on every ops.* counter (tolerances metadata in the
    # baseline overrides per counter), exact result count
    PYTHONPATH=src python benchmarks/bench_obs_invariants.py \
        --compare benchmarks/BENCH_obs.json --tolerance 0.01 \
        --out obs-metrics-fresh.json

Exit codes: 0 = pass/recorded, 1 = drift detected.

Runs are serial: parallel shards mine masked sub-databases, so their
counts are legitimately different (see docs/observability.md).  The
fixture is a *committed file*, not a generator call, so NumPy RNG
stream changes cannot move the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile

from repro.data.io import read_fimi
from repro.mining import mine
from repro.obs import Probe
from repro.serving import StreamingMiner

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "yeast_gate.fimi")

#: Streaming-ingest workload shape: fold cadence and query script size
#: are part of the pinned invariants.
STREAM_BATCH_RECORDS = 16
STREAM_SMIN = 5
#: Counters excluded from the streaming gate: byte counts track JSON /
#: codec encodings of floats (digit-count dependent), retries track
#: transient runner I/O — neither is an algorithm invariant.
_STREAM_SKIP = ("wal.retries",)

#: Pinned gate workloads: name -> mine() keyword arguments.
WORKLOADS = {
    "ista-bitint": {"algorithm": "ista", "backend": "bitint", "smin": 5},
    "eclat-closed-numpy": {
        "algorithm": "eclat",
        "target": "closed",
        "backend": "numpy",
        "smin": 5,
    },
}

#: Per-counter tolerance overrides recorded into the baseline.  The
#: early-abort pair is derived from the data-dependent sentinel set, so
#: it must not move at all — any change is a bound-pushdown change.
TOLERANCES = {
    "ops.kernel.early_aborts": 0.0,
    "ops.kernel.words_skipped": 0.0,
}


def measure(name: str) -> dict:
    """One probed serial run of the named workload; the gate record."""
    spec = dict(WORKLOADS[name])
    smin = spec.pop("smin")
    db = read_fimi(FIXTURE)
    probe = Probe()
    result = mine(db, smin, probe=probe, **spec)
    snapshot = probe.metrics.snapshot()
    return {
        "fixture": os.path.relpath(FIXTURE, os.path.dirname(__file__)),
        "workload": dict(WORKLOADS[name]),
        "n_closed": len(result),
        "counters": {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("ops.")
        },
        "metrics": snapshot,
    }


def measure_streaming(store_dir=None) -> dict:
    """The fixture through the streaming store, histogram counts pinned.

    ``store_dir`` keeps the store (WAL, snapshots, flight segments) on
    disk for artifact upload; by default a temp directory is used and
    removed.
    """
    # The streaming store ingests label rows, not packed bitmasks —
    # same tokenisation as `repro-mine ingest`.
    with open(FIXTURE, "r", encoding="utf-8") as handle:
        rows = [line.split() for line in handle if line.strip()]
    cleanup = store_dir is None
    if store_dir is None:
        store_dir = tempfile.mkdtemp(prefix="obs-gate-store-")
    probe = Probe()
    try:
        store = StreamingMiner.open(
            store_dir,
            batch_records=STREAM_BATCH_RECORDS,
            probe=probe,
            flight_interval=0.0,
        )
        for row in rows:
            store.ingest(row)
        store.fold()
        # Fixed query script: each call lands in a query histogram.
        n_closed = len(dict(store.closed_sets(STREAM_SMIN)))
        store.top_k(10)
        store.support_of(rows[0][:1])
        store.close()
    finally:
        if cleanup:
            shutil.rmtree(store_dir, ignore_errors=True)

    snapshot = probe.metrics.snapshot()
    counters = {
        name: value
        for name, value in snapshot["counters"].items()
        if not name.endswith("_bytes") and name not in _STREAM_SKIP
    }
    # Histogram COUNTS are invariants (one observation per record /
    # fold / query); durations are deliberately not recorded.
    for name, data in snapshot["histograms"].items():
        counters[f"hist.{name}.count"] = data["count"]
    assert counters["hist.wal.append.seconds.count"] == len(rows)
    assert counters["hist.serve.fold.records.count"] == counters["wal.folds"]
    return {
        "fixture": os.path.relpath(FIXTURE, os.path.dirname(__file__)),
        "workload": {
            "algorithm": "streaming",
            "backend": "incremental",
            "smin": STREAM_SMIN,
            "batch_records": STREAM_BATCH_RECORDS,
        },
        "n_closed": n_closed,
        "counters": counters,
        "metrics": snapshot,
    }


def measure_all(flight_dir=None) -> dict:
    workloads = {name: measure(name) for name in WORKLOADS}
    workloads["streaming-ingest"] = measure_streaming(store_dir=flight_dir)
    tolerances = dict(TOLERANCES)
    # Every histogram count in the streaming workload is exact: a count
    # drift means an instrumentation point was added, lost, or moved.
    for name in workloads["streaming-ingest"]["counters"]:
        if name.startswith("hist."):
            tolerances[name] = 0.0
    return {"workloads": workloads, "tolerances": tolerances}


def compare_workload(
    baseline: dict, fresh: dict, tolerance: float, tolerances: dict, label: str = ""
) -> list:
    """Drift messages for one workload record (empty = gate passes)."""
    prefix = f"{label}: " if label else ""
    failures = []
    if fresh["n_closed"] != baseline["n_closed"]:
        failures.append(
            f"{prefix}n_closed: {fresh['n_closed']} != baseline "
            f"{baseline['n_closed']} (result family changed)"
        )
    for name, base_value in sorted(baseline.get("counters", {}).items()):
        fresh_value = fresh["counters"].get(name)
        if fresh_value is None:
            failures.append(f"{prefix}{name}: missing from fresh run")
            continue
        effective = tolerances.get(name, tolerance)
        allowed = abs(base_value) * effective
        if abs(fresh_value - base_value) > allowed:
            failures.append(
                f"{prefix}{name}: {fresh_value} drifted from baseline "
                f"{base_value} (tolerance +-{effective:.1%})"
            )
    return failures


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Drift messages across all workloads (empty = gate passes).

    The per-counter ``tolerances`` metadata recorded in the baseline
    overrides the CLI tolerance — counters pinned at 0.0 must match
    exactly.
    """
    tolerances = baseline.get("tolerances", {})
    failures = []
    for name, base_record in sorted(baseline.get("workloads", {}).items()):
        fresh_record = fresh.get("workloads", {}).get(name)
        if fresh_record is None:
            failures.append(f"{name}: workload missing from fresh run")
            continue
        failures.extend(
            compare_workload(
                base_record, fresh_record, tolerance, tolerances, label=name
            )
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--record", metavar="FILE", help="run the gate workloads and write the baseline"
    )
    action.add_argument(
        "--compare", metavar="FILE", help="run the gate workloads and compare"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="relative counter tolerance (default 0.01 = 1%%; the "
        "baseline's tolerances metadata overrides per counter)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the fresh record (full metrics) here"
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        help="keep the streaming workload's store (flight recorder "
        "segments included) here for artifact upload",
    )
    args = parser.parse_args(argv)

    fresh = measure_all(flight_dir=args.flight_dir)
    for name, record in sorted(fresh["workloads"].items()):
        spec = record["workload"]
        print(
            f"# {name}: {spec['algorithm']} on {record['fixture']} at "
            f"smin={spec['smin']} ({spec['backend']}): "
            f"{record['n_closed']} closed sets"
        )
        for counter, value in sorted(record["counters"].items()):
            print(f"{counter:32s} {value}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.record:
        record = {
            "workloads": {
                name: {k: v for k, v in rec.items() if k != "metrics"}
                for name, rec in fresh["workloads"].items()
            },
            # The baseline pins counters, not histograms.
            "tolerances": fresh["tolerances"],
        }
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# baseline written to {args.record}")
        return 0

    with open(args.compare, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"# {len(failures)} invariant drift(s) against {args.compare}:")
        for failure in failures:
            print(f"DRIFT {failure}")
        return 1
    print(f"# all counters within tolerance of {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

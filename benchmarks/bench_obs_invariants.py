"""Observability invariant gate: cost-model counters on fixed fixtures.

Mines the committed yeast-style fixture under an observability probe
and gates on the *cost model*, not on wall clock: the intersection
count (and the other ``ops.*`` counters) of a deterministic serial run
must stay within a small tolerance of the committed baseline.
Wall-clock gates drown in runner noise; operation counts are exact, so
a drift here means the algorithm itself changed — a different pruning
schedule, a lost elimination, a double-counted fallback — which is
precisely what a reproduction repo must notice.

Two workloads are pinned:

* ``ista-bitint`` — IsTa, serial, reference backend.  The paper's
  algorithm on the paper's counters.
* ``eclat-closed-numpy`` — Eclat (closed target) on the vectorised
  backend, which drives the bounded kernel primitives and therefore
  the ``ops.kernel.early_aborts`` / ``ops.kernel.words_skipped`` pair.
  Those counters derive from the *returned* sentinel set (support
  below smin), which is data-dependent and implementation-independent,
  so they are exact across machines — the baseline pins them at
  tolerance 0 via its ``tolerances`` metadata.

Usage::

    # Record (refresh) the committed baseline
    PYTHONPATH=src python benchmarks/bench_obs_invariants.py \
        --record benchmarks/BENCH_obs.json

    # CI gate: +-1% on every ops.* counter (tolerances metadata in the
    # baseline overrides per counter), exact result count
    PYTHONPATH=src python benchmarks/bench_obs_invariants.py \
        --compare benchmarks/BENCH_obs.json --tolerance 0.01 \
        --out obs-metrics-fresh.json

Exit codes: 0 = pass/recorded, 1 = drift detected.

Runs are serial: parallel shards mine masked sub-databases, so their
counts are legitimately different (see docs/observability.md).  The
fixture is a *committed file*, not a generator call, so NumPy RNG
stream changes cannot move the gate.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.data.io import read_fimi
from repro.mining import mine
from repro.obs import Probe

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "yeast_gate.fimi")

#: Pinned gate workloads: name -> mine() keyword arguments.
WORKLOADS = {
    "ista-bitint": {"algorithm": "ista", "backend": "bitint", "smin": 5},
    "eclat-closed-numpy": {
        "algorithm": "eclat",
        "target": "closed",
        "backend": "numpy",
        "smin": 5,
    },
}

#: Per-counter tolerance overrides recorded into the baseline.  The
#: early-abort pair is derived from the data-dependent sentinel set, so
#: it must not move at all — any change is a bound-pushdown change.
TOLERANCES = {
    "ops.kernel.early_aborts": 0.0,
    "ops.kernel.words_skipped": 0.0,
}


def measure(name: str) -> dict:
    """One probed serial run of the named workload; the gate record."""
    spec = dict(WORKLOADS[name])
    smin = spec.pop("smin")
    db = read_fimi(FIXTURE)
    probe = Probe()
    result = mine(db, smin, probe=probe, **spec)
    snapshot = probe.metrics.snapshot()
    return {
        "fixture": os.path.relpath(FIXTURE, os.path.dirname(__file__)),
        "workload": dict(WORKLOADS[name]),
        "n_closed": len(result),
        "counters": {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("ops.")
        },
        "metrics": snapshot,
    }


def measure_all() -> dict:
    return {
        "workloads": {name: measure(name) for name in WORKLOADS},
        "tolerances": dict(TOLERANCES),
    }


def compare_workload(
    baseline: dict, fresh: dict, tolerance: float, tolerances: dict, label: str = ""
) -> list:
    """Drift messages for one workload record (empty = gate passes)."""
    prefix = f"{label}: " if label else ""
    failures = []
    if fresh["n_closed"] != baseline["n_closed"]:
        failures.append(
            f"{prefix}n_closed: {fresh['n_closed']} != baseline "
            f"{baseline['n_closed']} (result family changed)"
        )
    for name, base_value in sorted(baseline.get("counters", {}).items()):
        fresh_value = fresh["counters"].get(name)
        if fresh_value is None:
            failures.append(f"{prefix}{name}: missing from fresh run")
            continue
        effective = tolerances.get(name, tolerance)
        allowed = abs(base_value) * effective
        if abs(fresh_value - base_value) > allowed:
            failures.append(
                f"{prefix}{name}: {fresh_value} drifted from baseline "
                f"{base_value} (tolerance +-{effective:.1%})"
            )
    return failures


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Drift messages across all workloads (empty = gate passes).

    The per-counter ``tolerances`` metadata recorded in the baseline
    overrides the CLI tolerance — counters pinned at 0.0 must match
    exactly.
    """
    tolerances = baseline.get("tolerances", {})
    failures = []
    for name, base_record in sorted(baseline.get("workloads", {}).items()):
        fresh_record = fresh.get("workloads", {}).get(name)
        if fresh_record is None:
            failures.append(f"{name}: workload missing from fresh run")
            continue
        failures.extend(
            compare_workload(
                base_record, fresh_record, tolerance, tolerances, label=name
            )
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--record", metavar="FILE", help="run the gate workloads and write the baseline"
    )
    action.add_argument(
        "--compare", metavar="FILE", help="run the gate workloads and compare"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="relative counter tolerance (default 0.01 = 1%%; the "
        "baseline's tolerances metadata overrides per counter)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the fresh record (full metrics) here"
    )
    args = parser.parse_args(argv)

    fresh = measure_all()
    for name, record in sorted(fresh["workloads"].items()):
        spec = record["workload"]
        print(
            f"# {name}: {spec['algorithm']} on {record['fixture']} at "
            f"smin={spec['smin']} ({spec['backend']}): "
            f"{record['n_closed']} closed sets"
        )
        for counter, value in sorted(record["counters"].items()):
            print(f"{counter:32s} {value}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.record:
        record = {
            "workloads": {
                name: {k: v for k, v in rec.items() if k != "metrics"}
                for name, rec in fresh["workloads"].items()
            },
            # The baseline pins counters, not histograms.
            "tolerances": fresh["tolerances"],
        }
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# baseline written to {args.record}")
        return 0

    with open(args.compare, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"# {len(failures)} invariant drift(s) against {args.compare}:")
        for failure in failures:
            print(f"DRIFT {failure}")
        return 1
    print(f"# all counters within tolerance of {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
